package conformance

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"

	"quark/internal/core"
	"quark/internal/dispatch"
	"quark/internal/outbox"
	"quark/internal/reldb"
	"quark/internal/relsql"
	"quark/internal/shard"
	"quark/internal/wire"
	"quark/internal/xdm"
)

// errRollback is the sentinel the runner returns from a batch callback to
// request a rollback; Engine.Batch rolls back and propagates it.
var errRollback = fmt.Errorf("conformance: rollback requested")

// Run executes the scenario's script in the given translation mode and
// style and returns the formatted notification log. In single-statement
// style every statement fires its triggers immediately (begin/commit are
// ignored; rollback blocks are skipped entirely, matching the batched
// style's rolled-back net effect of nothing). In batched style each
// begin..commit block runs as one transaction whose triggers fire once at
// commit.
//
// The log is deterministic: one unit per statement (or per batch block),
// notifications sorted within each unit. Notification lines carry the
// trigger, the view-level event, the evaluated action arguments, and the
// serialized NEW node — everything the paper's action contract exposes
// except OLD content, which the GROUPED-AGG mode may legitimately elide
// when no trigger reads it (§5.2).
func Run(sc *Scenario, mode core.Mode, batched bool) (string, error) {
	return RunStyle(sc, mode, RunOpts{Batched: batched})
}

// RunOpts selects the execution style for RunStyle.
type RunOpts struct {
	// Batched runs each begin..commit block as one transaction whose
	// triggers fire once at commit.
	Batched bool
	// Async delivers actions through the bounded-queue worker pool
	// (8 workers, Block backpressure) with a Drain barrier after every
	// unit, so the log must come out byte-identical to synchronous mode.
	Async bool
	// Replayed routes every delivery through the durable outbox and
	// builds the notification log from the *log itself*: each unit's
	// records are read back from the segment files and decoded through
	// the wire codec — the replayed-sink path an external consumer would
	// take — instead of from the in-process action. The result must still
	// come out byte-identical to the synchronous goldens, proving the
	// codec and the log lose nothing the action contract exposes.
	Replayed bool
	// Shards, when positive, runs the scenario on a sharded engine with
	// that many shards (partitioned per the scenario's [routing] section),
	// every statement routed or distributed by the shard layer. The log
	// must STILL come out byte-identical to the single-engine goldens —
	// the sharding subsystem's observational-equivalence claim.
	Shards int
	// Rebalance forces one routing-group migration before every unit of a
	// sharded run (the first group in sorted order moves one shard over),
	// so every scenario replays with data movement interleaved mid-stream.
	// The log must STILL come out byte-identical to the single-engine
	// goldens: rebalancing is silent data movement, never trigger activity.
	// Ignored on single-engine runs.
	Rebalance bool
	// Adaptive runs the engine with per-group translation modes enabled.
	// ModeSeed picks the initial per-group mode mix: every trigger group is
	// assigned an arbitrary mode (derived deterministically from the seed),
	// so structurally different groups run translated and materialized side
	// by side. The log must STILL come out byte-identical to the
	// single-engine MATERIALIZED goldens — the mixed-mode equivalence claim.
	Adaptive bool
	ModeSeed int64
	// ModeFlips, with Adaptive, forces one live mode switch before every
	// unit (a seeded group/mode pick), so every scenario replays with
	// silent mode migrations interleaved mid-stream. The log must STILL
	// match the goldens: migration is never trigger activity.
	ModeFlips bool
	// Backend, when "sqlite", attaches the real-database plan shadow
	// (internal/relsql) to the engine: every translated plan evaluation is
	// replayed as rendered SQL against a mirrored backend database with
	// real INSERTED_/DELETED_ transition tables, and any result divergence
	// fails the run. Single-engine styles only. Requires a build with the
	// sqlite tag (the stub backend errors otherwise).
	Backend string
	// BackendVerified, when non-nil, receives the number of plan
	// evaluations the backend shadow verified during the run.
	BackendVerified *int64
	// AbortFirst attempts every batched begin..commit block TWICE: first
	// with a prepare-phase failure armed on the engine (every shard of a
	// sharded run) — the attempt must error, deliver nothing, and leave no
	// state behind, which the two-phase protocol guarantees by rolling
	// every participant back — and then for real. The final log must still
	// come out byte-identical to the plain batched goldens: an aborted
	// transaction leaves zero trace, or the retry (and every later unit)
	// would diverge.
	AbortFirst bool
}

// runEngine is the slice of the engine surface the runner needs, served
// by both the single core engine and the sharded fleet.
type runEngine interface {
	stmtWriter
	LoadRow(table string, row reldb.Row) error
	RegisterAction(name string, fn core.ActionFunc)
	CreateView(name, src string) error
	CreateTrigger(src string) error
	Flush() error
	EnableAsync(cfg dispatch.Config) error
	EnableOutbox(lg *outbox.Log, sink outbox.Sink) error
	Drain()
	Close() error
	Batch(fn func(stmtWriter) error) error
	// armPrepareFail / disarmPrepareFail install and clear a prepare-phase
	// failure on every underlying engine (the AbortFirst injection seam).
	armPrepareFail(err error)
	disarmPrepareFail()
	// rehearseRebalance forces one routing-group migration (the Rebalance
	// style's injection seam); a no-op on the single engine.
	rehearseRebalance() error
	// setAdaptive enables per-group modes (must run before CreateTrigger:
	// grouping signatures depend on it), groupSigs lists the live groups,
	// and setGroupModes runs a silent mode migration — the Adaptive and
	// ModeFlips seams.
	setAdaptive() error
	groupSigs() []string
	setGroupModes(target map[string]core.Mode) error
}

// coreRun adapts one core.Engine (initial data loads straight into the
// store, as the goldens were generated).
type coreRun struct {
	e  *core.Engine
	db *reldb.DB
}

func (r coreRun) LoadRow(table string, row reldb.Row) error { return r.db.Insert(table, row) }
func (r coreRun) RegisterAction(name string, fn core.ActionFunc) {
	r.e.RegisterAction(name, fn)
}
func (r coreRun) CreateView(name, src string) error {
	_, err := r.e.CreateView(name, src)
	return err
}
func (r coreRun) CreateTrigger(src string) error { return r.e.CreateTrigger(src) }
func (r coreRun) Flush() error                   { return r.e.Flush() }
func (r coreRun) EnableAsync(cfg dispatch.Config) error {
	return r.e.EnableAsyncDispatch(cfg)
}
func (r coreRun) EnableOutbox(lg *outbox.Log, sink outbox.Sink) error {
	return r.e.EnableOutbox(lg, sink)
}
func (r coreRun) Drain()       { r.e.Drain() }
func (r coreRun) Close() error { return r.e.Close() }
func (r coreRun) Insert(table string, rows ...reldb.Row) error {
	return r.e.Insert(table, rows...)
}
func (r coreRun) Update(table string, pred func(reldb.Row) bool, set func(reldb.Row) reldb.Row) (int, error) {
	return r.e.Update(table, pred, set)
}
func (r coreRun) Delete(table string, pred func(reldb.Row) bool) (int, error) {
	return r.e.Delete(table, pred)
}
func (r coreRun) Batch(fn func(stmtWriter) error) error {
	return r.e.Batch(func(tx *reldb.Tx) error { return fn(txWriter{tx}) })
}
func (r coreRun) armPrepareFail(err error) {
	r.e.SetPrepareCheck(func([]core.Invocation) error { return err })
}
func (r coreRun) disarmPrepareFail()       { r.e.SetPrepareCheck(nil) }
func (r coreRun) rehearseRebalance() error { return nil }
func (r coreRun) setAdaptive() error       { return r.e.SetModePolicy(nil) }
func (r coreRun) groupSigs() []string      { return r.e.GroupSigs() }
func (r coreRun) setGroupModes(target map[string]core.Mode) error {
	_, err := r.e.SetGroupModes(target)
	return err
}

// shardRun adapts a sharded engine; initial data routes through the
// shard layer so the directory knows every row.
type shardRun struct{ e *shard.Engine }

func (r shardRun) LoadRow(table string, row reldb.Row) error { return r.e.Insert(table, row) }
func (r shardRun) RegisterAction(name string, fn core.ActionFunc) {
	r.e.RegisterAction(name, fn)
}
func (r shardRun) CreateView(name, src string) error { return r.e.CreateView(name, src) }
func (r shardRun) CreateTrigger(src string) error    { return r.e.CreateTrigger(src) }
func (r shardRun) Flush() error                      { return r.e.Flush() }
func (r shardRun) EnableAsync(cfg dispatch.Config) error {
	return r.e.EnableAsyncDispatch(cfg)
}
func (r shardRun) EnableOutbox(lg *outbox.Log, sink outbox.Sink) error {
	return r.e.EnableOutbox(lg, sink)
}
func (r shardRun) Drain()       { r.e.Drain() }
func (r shardRun) Close() error { return r.e.Close() }
func (r shardRun) Insert(table string, rows ...reldb.Row) error {
	return r.e.Insert(table, rows...)
}
func (r shardRun) Update(table string, pred func(reldb.Row) bool, set func(reldb.Row) reldb.Row) (int, error) {
	return r.e.Update(table, pred, set)
}
func (r shardRun) Delete(table string, pred func(reldb.Row) bool) (int, error) {
	return r.e.Delete(table, pred)
}
func (r shardRun) Batch(fn func(stmtWriter) error) error {
	return r.e.Batch(func(tx *shard.Tx) error { return fn(tx) })
}
func (r shardRun) armPrepareFail(err error) {
	for i := 0; i < r.e.NumShards(); i++ {
		r.e.Shard(i).SetPrepareCheck(func([]core.Invocation) error { return err })
	}
}
func (r shardRun) disarmPrepareFail() {
	for i := 0; i < r.e.NumShards(); i++ {
		r.e.Shard(i).SetPrepareCheck(nil)
	}
}

// rehearseRebalance moves the first routing group (sorted order) one
// shard over — a forced silent migration whose invisibility every golden
// comparison then proves.
func (r shardRun) rehearseRebalance() error {
	n := r.e.NumShards()
	if n < 2 {
		return nil
	}
	groups := r.e.Groups()
	if len(groups) == 0 {
		return nil
	}
	g := groups[0]
	_, err := r.e.Rebalance(shard.Plan{Moves: []shard.GroupMove{
		{Table: g.Table, Key: g.Key, To: (g.Shard + 1) % n},
	}})
	return err
}

func (r shardRun) setAdaptive() error  { return r.e.SetModePolicy(nil) }
func (r shardRun) groupSigs() []string { return r.e.GroupSigs() }
func (r shardRun) setGroupModes(target map[string]core.Mode) error {
	_, err := r.e.SetGroupModes(target)
	return err
}

// RunStyle executes the scenario's script in the given translation mode
// and style; see Run.
func RunStyle(sc *Scenario, mode core.Mode, opts RunOpts) (string, error) {
	var e runEngine
	if opts.Shards > 0 {
		se, err := shard.New(sc.Schema, shard.Config{
			Shards: opts.Shards, Mode: mode, Routing: sc.Routing,
		})
		if err != nil {
			return "", err
		}
		e = shardRun{se}
	} else {
		db, err := reldb.Open(sc.Schema)
		if err != nil {
			return "", err
		}
		e = coreRun{core.NewEngine(db, mode), db}
	}
	if opts.Backend != "" {
		if opts.Backend != "sqlite" {
			return "", fmt.Errorf("conformance: unknown backend %q", opts.Backend)
		}
		cr, ok := e.(coreRun)
		if !ok {
			return "", fmt.Errorf("conformance: Backend runs are single-engine only (Shards must be 0)")
		}
		sh, err := relsql.NewShadow(cr.db)
		if err != nil {
			return "", err
		}
		defer func() {
			if opts.BackendVerified != nil {
				*opts.BackendVerified = sh.Verified()
			}
			_ = sh.Close()
		}()
		cr.e.SetPlanShadow(sh)
	}
	if opts.Adaptive {
		// Before any trigger registration: signatures depend on the flag.
		if err := e.setAdaptive(); err != nil {
			return "", err
		}
	}
	for _, dr := range sc.Data {
		if err := e.LoadRow(dr.Table, dr.Row); err != nil {
			return "", err
		}
	}
	if opts.Async {
		if err := e.EnableAsync(dispatch.Config{
			Workers: 8, QueueCap: 1024, Policy: dispatch.Block,
		}); err != nil {
			return "", err
		}
		defer func() { _ = e.Close() }()
	}
	var oblog *outbox.Log
	if opts.Replayed {
		dir, err := os.MkdirTemp("", "conformance-outbox-")
		if err != nil {
			return "", err
		}
		defer os.RemoveAll(dir)
		oblog, err = outbox.Open(dir, outbox.Options{})
		if err != nil {
			return "", err
		}
		defer oblog.Close()
		// Blackhole sink: delivery only acknowledges; the log's read-back
		// below is the consumer under test.
		sink := outbox.SinkFunc(func(*wire.Record) error { return nil })
		if err := e.EnableOutbox(oblog, sink); err != nil {
			return "", err
		}
	}

	// unitMu guards unit: in async style notifications append from worker
	// goroutines (the per-unit Drain barrier below makes the log content
	// identical to synchronous mode).
	var unitMu sync.Mutex
	var unit []string
	e.RegisterAction("notify", func(inv core.Invocation) error {
		line := formatNotify(inv.Trigger, inv.Event, inv.Args, inv.New)
		unitMu.Lock()
		unit = append(unit, line)
		unitMu.Unlock()
		return nil
	})
	for _, v := range sc.Views {
		if err := e.CreateView(v.Name, v.Src); err != nil {
			return "", fmt.Errorf("view %s: %w", v.Name, err)
		}
	}
	for _, src := range sc.Triggers {
		if err := e.CreateTrigger(src); err != nil {
			return "", fmt.Errorf("trigger: %w", err)
		}
	}
	if err := e.Flush(); err != nil {
		return "", err
	}
	var modeRng *rand.Rand
	if opts.Adaptive {
		// Arbitrary initial per-group mode mix, derived from the seed; the
		// same seed always deals the same mix.
		modeRng = rand.New(rand.NewSource(opts.ModeSeed))
		target := map[string]core.Mode{}
		for _, sig := range e.groupSigs() {
			target[sig] = core.Mode(modeRng.Intn(4))
		}
		if len(target) > 0 {
			if err := e.setGroupModes(target); err != nil {
				return "", fmt.Errorf("initial mode mix: %w", err)
			}
		}
	}

	var out strings.Builder
	lastSeq := uint64(1) // first log sequence not yet attributed to a unit
	endUnit := func(label string) error {
		e.Drain() // async barrier: attribute every delivery to its unit
		if oblog != nil {
			// Replayed sink: this unit's notifications come from the
			// durable log via the wire codec, not the in-process action.
			recs, err := oblog.Records(lastSeq)
			if err != nil {
				return err
			}
			unitMu.Lock()
			for _, r := range recs {
				unit = append(unit, formatRecord(r))
			}
			unitMu.Unlock()
			lastSeq = oblog.NextSeq()
		}
		unitMu.Lock()
		defer unitMu.Unlock()
		fmt.Fprintf(&out, "-- %s\n", label)
		sort.Strings(unit)
		for _, n := range unit {
			out.WriteString(n)
			out.WriteByte('\n')
		}
		unit = nil
		return nil
	}

	i := 0
	for i < len(sc.Script) {
		if opts.Rebalance {
			// One forced migration before every unit: the unit's own log
			// then proves the movement left no observable trace.
			if err := e.rehearseRebalance(); err != nil {
				return "", fmt.Errorf("rebalance rehearsal: %w", err)
			}
		}
		if opts.Adaptive && opts.ModeFlips {
			// One forced mode switch before every unit — a mid-stream
			// re-plan whose invisibility the unit's own log then proves.
			if sigs := e.groupSigs(); len(sigs) > 0 {
				sig := sigs[modeRng.Intn(len(sigs))]
				if err := e.setGroupModes(map[string]core.Mode{sig: core.Mode(modeRng.Intn(4))}); err != nil {
					return "", fmt.Errorf("mode flip rehearsal: %w", err)
				}
			}
		}
		st := sc.Script[i]
		if st.Kind != StBegin {
			if err := sc.execStmt(e, st); err != nil {
				return "", fmt.Errorf("%s: %w", st.Text, err)
			}
			if err := endUnit(st.Text); err != nil {
				return "", err
			}
			i++
			continue
		}
		// Collect the block.
		j := i + 1
		var block []Stmt
		for j < len(sc.Script) && sc.Script[j].Kind != StCommit && sc.Script[j].Kind != StRollback {
			if sc.Script[j].Kind == StBegin {
				return "", fmt.Errorf("nested begin is not supported")
			}
			block = append(block, sc.Script[j])
			j++
		}
		if j == len(sc.Script) {
			return "", fmt.Errorf("begin without commit/rollback")
		}
		rollback := sc.Script[j].Kind == StRollback
		label := fmt.Sprintf("begin..%s [%d stmts]", sc.Script[j].Text, len(block))
		switch {
		case !opts.Batched && rollback:
			// Rolled back: net effect is nothing in either style.
		case !opts.Batched:
			for _, bs := range block {
				if err := sc.execStmt(e, bs); err != nil {
					return "", fmt.Errorf("%s: %w", bs.Text, err)
				}
				if err := endUnit(bs.Text); err != nil {
					return "", err
				}
			}
			i = j + 1
			continue
		default:
			runBlock := func() error {
				return e.Batch(func(tx stmtWriter) error {
					for _, bs := range block {
						if err := sc.execStmt(tx, bs); err != nil {
							return fmt.Errorf("%s: %w", bs.Text, err)
						}
					}
					if rollback {
						return errRollback
					}
					return nil
				})
			}
			if opts.AbortFirst && !rollback {
				// Dress rehearsal: the armed prepare failure must abort the
				// block with nothing delivered and no state applied — the
				// real attempt below (and every later unit) re-proves the
				// no-state-leak half against the goldens.
				e.armPrepareFail(fmt.Errorf("conformance: injected prepare failure"))
				err := runBlock()
				e.disarmPrepareFail()
				if err == nil {
					return "", fmt.Errorf("%s: armed prepare failure did not abort the block", label)
				}
				e.Drain()
				unitMu.Lock()
				leaked := len(unit)
				unitMu.Unlock()
				if leaked != 0 {
					return "", fmt.Errorf("%s: aborted block delivered %d notifications", label, leaked)
				}
			}
			if err := runBlock(); err != nil && err != errRollback {
				return "", err
			}
		}
		if err := endUnit(label); err != nil {
			return "", err
		}
		i = j + 1
	}
	return out.String(), nil
}

// formatNotify is the single renderer of a notification line. The
// in-process action and the outbox read-back both go through it, which is
// what makes replayed-sink runs byte-comparable with the goldens.
func formatNotify(trigger string, event reldb.Event, args []xdm.Value, n *xdm.Node) string {
	strs := make([]string, len(args))
	for i, a := range args {
		strs[i] = a.Lexical()
	}
	newXML := "-"
	if n != nil {
		newXML = n.Serialize(false)
	}
	return fmt.Sprintf("notify %s %s args=(%s) new=%s",
		trigger, event, strings.Join(strs, "; "), newXML)
}

// formatRecord renders a decoded outbox record via formatNotify.
func formatRecord(r *wire.Record) string {
	return formatNotify(r.Trigger, r.Event, r.Args, r.New)
}

// stmtWriter is the mutation surface shared by the engine (per-statement
// firing) and a transaction (per-commit firing).
type stmtWriter interface {
	Insert(table string, rows ...reldb.Row) error
	Update(table string, pred func(reldb.Row) bool, set func(reldb.Row) reldb.Row) (int, error)
	Delete(table string, pred func(reldb.Row) bool) (int, error)
}

// txWriter adapts *reldb.Tx (method set already matches; the wrapper only
// exists to make the interface satisfaction explicit).
type txWriter struct{ *reldb.Tx }

func (sc *Scenario) execStmt(w stmtWriter, st Stmt) error {
	switch st.Kind {
	case StInsert:
		return w.Insert(st.Table, reldb.Row(st.Row))
	case StUpdate:
		t, err := sc.table(st.Table)
		if err != nil {
			return err
		}
		type setCol struct {
			ci int
			v  xdm.Value
		}
		var sets []setCol
		for col, v := range st.Sets {
			sets = append(sets, setCol{t.ColIndex(col), v})
		}
		sort.Slice(sets, func(i, j int) bool { return sets[i].ci < sets[j].ci })
		_, err = w.Update(st.Table, sc.pred(st), func(r reldb.Row) reldb.Row {
			for _, s := range sets {
				r[s.ci] = s.v
			}
			return r
		})
		return err
	case StDelete:
		_, err := w.Delete(st.Table, sc.pred(st))
		return err
	default:
		return fmt.Errorf("unexpected statement kind %d", st.Kind)
	}
}

// pred compiles the statement's where clause against the table layout.
func (sc *Scenario) pred(st Stmt) func(reldb.Row) bool {
	if st.WhereAll {
		return func(reldb.Row) bool { return true }
	}
	t, _ := sc.Schema.Table(st.Table)
	ci := t.ColIndex(st.WhereCol)
	return func(r reldb.Row) bool { return xdm.Equal(r[ci], st.WhereVal) }
}
