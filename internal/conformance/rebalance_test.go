package conformance

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"quark/internal/core"
	"quark/internal/dispatch"
	"quark/internal/outbox"
	"quark/internal/shard"
	"quark/internal/workload"
	"quark/internal/xdm"
)

// checkDirPersistence proves the persisted directory round-trips: the
// state reconstructed from the checkpoint + delta files on disk must
// equal the router's live state, after every operation. Opening a second
// DirStore over the engine's live directory is safe — reads see only
// complete frames because ops apply serially here.
func checkDirPersistence(t *testing.T, i int, seed int64, e *shard.Engine, dir string) {
	t.Helper()
	s, st, err := shard.OpenDirStore(dir)
	if err != nil {
		t.Fatalf("op %d: reopening directory store: %v [replay: -seed %d]", i, err, seed)
	}
	_ = s.Close()
	if st.Shards != e.Router().Shards() {
		t.Fatalf("op %d: persisted shard count %d, live %d [replay: -seed %d]", i, st.Shards, e.Router().Shards(), seed)
	}
	if live := e.Router().DirSnapshot(); !reflect.DeepEqual(st.Dir, live) {
		t.Fatalf("op %d: persisted directory diverges from live (%d vs %d entries) [replay: -seed %d]",
			i, len(st.Dir), len(live), seed)
	}
	if live := e.Router().AssignSnapshot(); !reflect.DeepEqual(st.Assign, live) {
		t.Fatalf("op %d: persisted assignments diverge from live (%d vs %d entries) [replay: -seed %d]",
			i, len(st.Assign), len(live), seed)
	}
}

// TestShardFuzzRebalance is the elastic-rebalancing differential fuzzer:
// a seeded stream with rebalance ops interleaved runs against a fleet
// that GROWS 4 -> 16 a third of the way in and SHRINKS 16 -> 6 at two
// thirds, while the single-engine oracle sees the same stream with every
// rebalance ignored. Every op's invocation set and per-trigger delivery
// order must match the oracle exactly (zero missed, duplicated, or
// spurious invocations — data movement is observationally invisible),
// and after EVERY op the directory-consistency invariant
// (Engine.VerifyDirectory) and the persistence round-trip (state on disk
// == live state) are re-proved. Runs sync, async, and outbox delivery.
func TestShardFuzzRebalance(t *testing.T) {
	p := workload.Params{Depth: 2, LeafTuples: 128, Fanout: 16, NumTriggers: 16, NumSatisfied: 2}
	sp := workload.DefaultStream(*fuzzOps)
	sp.RebalanceFrac = 0.12
	for _, style := range []fuzzStyle{fuzzSync, fuzzAsync, fuzzOutbox} {
		t.Run(style.String(), func(t *testing.T) {
			seed := *fuzzSeed
			t.Logf("replay with: go test ./internal/conformance -run TestShardFuzzRebalance -seed %d -fuzzops %d", seed, *fuzzOps)
			fuzzRebalance(t, p, sp, style, seed)
		})
	}
}

func fuzzRebalance(t *testing.T, p workload.Params, sp workload.StreamParams, style fuzzStyle, seed int64) {
	t.Helper()
	ops, err := workload.GenStream(p, sp, seed)
	if err != nil {
		t.Fatal(err)
	}
	rebalances := 0
	for _, op := range ops {
		if op.Rebalance != nil {
			rebalances++
		}
	}
	if rebalances == 0 {
		t.Fatalf("stream has no rebalance ops; the run would prove nothing [replay: -seed %d]", seed)
	}

	oracle, err := workload.Build(p, core.ModeGrouped, seed)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sharded, err := workload.BuildShardedDir(p, core.ModeGrouped, 4, seed, dir)
	if err != nil {
		t.Fatal(err)
	}
	var oCap, sCap capture
	oracle.Engine.RegisterAction("notify", oCap.action)
	sharded.Engine.RegisterAction("notify", sCap.action)

	oDrain, sDrain := func() {}, func() {}
	var sLog *outbox.Log
	switch style {
	case fuzzAsync, fuzzOutbox:
		cfg := dispatch.Config{Workers: 4, QueueCap: 256, Policy: dispatch.Block}
		if err := oracle.Engine.EnableAsyncDispatch(cfg); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Engine.EnableAsyncDispatch(cfg); err != nil {
			t.Fatal(err)
		}
		defer func() { _ = oracle.Engine.Close() }()
		defer func() { _ = sharded.Engine.Close() }()
		oDrain, sDrain = oracle.Engine.Drain, sharded.Engine.Drain
		if style == fuzzOutbox {
			// The outbox co-locates with the directory files: outbox.Open
			// ignores dir.ckpt / dir.delta, DirStore never reads seg-*.log.
			sLog, err = outbox.Open(dir, outbox.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer sLog.Close()
			if err := sharded.Engine.EnableOutbox(sLog, nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	tables := []string{p.TableName(0), p.TableName(1)}
	oApp := workload.SingleApplier{E: oracle.Engine}
	sApp := workload.ShardApplier{E: sharded.Engine}
	growAt, shrinkAt := len(ops)/3, 2*len(ops)/3
	for i, op := range ops {
		switch i {
		case growAt:
			if err := sharded.Engine.Grow(16); err != nil {
				t.Fatalf("op %d: Grow(16): %v [replay: -seed %d]", i, err, seed)
			}
		case shrinkAt:
			if err := sharded.Engine.Shrink(6); err != nil {
				t.Fatalf("op %d: Shrink(6): %v [replay: -seed %d]", i, err, seed)
			}
		}
		if err := workload.ApplyOp(oApp, p, op); err != nil {
			t.Fatalf("op %d (%+v) on oracle: %v [replay: -seed %d]", i, op, err, seed)
		}
		oDrain()
		if err := workload.ApplyOp(sApp, p, op); err != nil {
			t.Fatalf("op %d (%+v) on sharded: %v [replay: -seed %d]", i, op, err, seed)
		}
		sDrain()
		want, got := oCap.take(), sCap.take()
		if sortedJoin(want) != sortedJoin(got) {
			t.Fatalf("op %d (%+v) diverges [replay: -seed %d]:\noracle:\n  %s\nsharded:\n  %s",
				i, op, seed, strings.Join(want, "\n  "), strings.Join(got, "\n  "))
		}
		wantSeq, gotSeq := perTrigger(want), perTrigger(got)
		for trig, ws := range wantSeq {
			if strings.Join(ws, "\n") != strings.Join(gotSeq[trig], "\n") {
				t.Fatalf("op %d: trigger %s delivery order diverges [replay: -seed %d]:\noracle:\n  %s\nsharded:\n  %s",
					i, trig, seed, strings.Join(ws, "\n  "), strings.Join(gotSeq[trig], "\n  "))
			}
		}
		if err := sharded.Engine.VerifyDirectory(); err != nil {
			t.Fatalf("op %d (%+v): %v [replay: -seed %d]", i, op, err, seed)
		}
		checkDirPersistence(t, i, seed, sharded.Engine, dir)
	}
	if n := sharded.Engine.NumShards(); n != 6 {
		t.Fatalf("fleet ended at %d shards, want 6 [replay: -seed %d]", n, seed)
	}
	checkFleetAgainstOracle(t, len(ops), seed, oracle, sharded, tables)
	if sLog != nil {
		sharded.Engine.Drain()
		st := sLog.Stats()
		if st.Acked != st.NextSeq-1 {
			t.Errorf("sharded outbox: acked %d of %d appended [replay: -seed %d]", st.Acked, st.NextSeq-1, seed)
		}
	}
	t.Logf("%d ops (%d rebalances), fleet 4 -> 16 -> 6", len(ops), rebalances)
}

// TestShardGrowShrink is the grow-shrink smoke: a plain stream (no
// rebalance ops) with the fleet grown 4 -> 8 a third of the way in and
// shrunk back 8 -> 4 at two thirds, differentially against the oracle,
// with the directory invariant checked after every op.
func TestShardGrowShrink(t *testing.T) {
	p := workload.Params{Depth: 2, LeafTuples: 128, Fanout: 16, NumTriggers: 16, NumSatisfied: 2}
	sp := workload.DefaultStream(*fuzzOps)
	seed := *fuzzSeed
	ops, err := workload.GenStream(p, sp, seed)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := workload.Build(p, core.ModeGrouped, seed)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := workload.BuildSharded(p, core.ModeGrouped, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	var oCap, sCap capture
	oracle.Engine.RegisterAction("notify", oCap.action)
	sharded.Engine.RegisterAction("notify", sCap.action)
	oApp := workload.SingleApplier{E: oracle.Engine}
	sApp := workload.ShardApplier{E: sharded.Engine}
	tables := []string{p.TableName(0), p.TableName(1)}
	for i, op := range ops {
		switch i {
		case len(ops) / 3:
			if err := sharded.Engine.Grow(8); err != nil {
				t.Fatalf("op %d: Grow(8): %v [replay: -seed %d]", i, err, seed)
			}
		case 2 * len(ops) / 3:
			if err := sharded.Engine.Shrink(4); err != nil {
				t.Fatalf("op %d: Shrink(4): %v [replay: -seed %d]", i, err, seed)
			}
		}
		if err := workload.ApplyOp(oApp, p, op); err != nil {
			t.Fatalf("op %d on oracle: %v [replay: -seed %d]", i, err, seed)
		}
		if err := workload.ApplyOp(sApp, p, op); err != nil {
			t.Fatalf("op %d on sharded: %v [replay: -seed %d]", i, err, seed)
		}
		if want, got := sortedJoin(oCap.take()), sortedJoin(sCap.take()); want != got {
			t.Fatalf("op %d diverges [replay: -seed %d]:\noracle:\n%s\nsharded:\n%s", i, seed, want, got)
		}
		if err := sharded.Engine.VerifyDirectory(); err != nil {
			t.Fatalf("op %d: %v [replay: -seed %d]", i, err, seed)
		}
	}
	if n := sharded.Engine.NumShards(); n != 4 {
		t.Fatalf("fleet ended at %d shards, want 4", n)
	}
	checkFleetAgainstOracle(t, len(ops), seed, oracle, sharded, tables)
}

// TestShardRebalanceAbortIdentical proves an aborted rebalance leaves the
// fleet AND the directory byte-identical: a prepare failure armed on one
// shard must fail the whole plan with no row moved, no directory entry
// touched, and no assignment changed; disarmed, the same plan applies.
func TestShardRebalanceAbortIdentical(t *testing.T) {
	p := workload.Params{Depth: 2, LeafTuples: 64, Fanout: 8, NumTriggers: 8, NumSatisfied: 2}
	sharded, err := workload.BuildSharded(p, core.ModeGrouped, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded.Engine.RegisterAction("notify", func(core.Invocation) error { return nil })
	groups := sharded.Engine.Groups()
	if len(groups) < 3 {
		t.Fatalf("expected at least 3 routing groups, have %d", len(groups))
	}
	n := sharded.Engine.NumShards()
	plan := shard.Plan{}
	for _, g := range groups[:3] {
		plan.Moves = append(plan.Moves, shard.GroupMove{Table: g.Table, Key: g.Key, To: (g.Shard + 1) % n})
	}
	tables := []string{p.TableName(0), p.TableName(1)}
	pre := fleetState(sharded.Engine, tables)
	preAssign := sharded.Engine.Router().AssignSnapshot()

	sharded.Engine.Shard(2).SetPrepareCheck(func([]core.Invocation) error { return errInjected })
	if _, err := sharded.Engine.Rebalance(plan); err == nil {
		t.Fatal("armed prepare failure did not abort the rebalance")
	}
	sharded.Engine.Shard(2).SetPrepareCheck(nil)
	if post := fleetState(sharded.Engine, tables); post != pre {
		t.Fatalf("aborted rebalance left partial state:\n--- before ---\n%s\n--- after ---\n%s", pre, post)
	}
	if postAssign := sharded.Engine.Router().AssignSnapshot(); !reflect.DeepEqual(preAssign, postAssign) {
		t.Fatal("aborted rebalance changed group assignments")
	}

	moved, err := sharded.Engine.Rebalance(plan)
	if err != nil {
		t.Fatalf("disarmed rebalance: %v", err)
	}
	if moved != 3 {
		t.Fatalf("disarmed rebalance moved %d groups, want 3", moved)
	}
	for _, m := range plan.Moves {
		if got := sharded.Engine.GroupOwner(m.Table, xdm.Int(rootIDForKey(t, p, m.Key))); got != m.To {
			t.Fatalf("group %q owned by shard %d after rebalance, want %d", m.Key, got, m.To)
		}
	}
	if err := sharded.Engine.VerifyDirectory(); err != nil {
		t.Fatal(err)
	}
}

// rootIDForKey recovers which top-table id a group key names (the
// workload's top table routes by its integer primary key).
func rootIDForKey(t *testing.T, p workload.Params, key string) int64 {
	t.Helper()
	for id := int64(0); id < int64(p.NumTop()); id++ {
		if shard.GroupKey(xdm.Int(id)) == key {
			return id
		}
	}
	t.Fatalf("group key %q names no known root", key)
	return 0
}

// snapshotDirFiles copies the directory-persistence files' raw bytes —
// the "disk image" a kill at that instant would leave behind.
func snapshotDirFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range []string{"dir.ckpt", "dir.delta"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		out[name] = append([]byte(nil), b...)
	}
	return out
}

// TestShardRebalanceKillMidCommit kills a rebalance between its prepare
// and commit phases (the barrier seam) and proves the crash image on
// disk is byte-identical to the pre-rebalance state: the directory flip
// happens at commit, so a process that dies mid-protocol recovers to the
// old placement with every row still addressable. It then reopens the
// COMMITTED directory in a fresh engine and proves restart adoption
// lands every reloaded row back on its post-rebalance shard.
func TestShardRebalanceKillMidCommit(t *testing.T) {
	p := workload.Params{Depth: 2, LeafTuples: 64, Fanout: 8, NumTriggers: 8, NumSatisfied: 2}
	dir := t.TempDir()
	sharded, err := workload.BuildShardedDir(p, core.ModeGrouped, 4, 1, dir)
	if err != nil {
		t.Fatal(err)
	}
	sharded.Engine.RegisterAction("notify", func(core.Invocation) error { return nil })

	groups := sharded.Engine.Groups()
	if len(groups) == 0 {
		t.Fatal("no routing groups")
	}
	g := groups[0]
	to := (g.Shard + 1) % sharded.Engine.NumShards()

	pre := snapshotDirFiles(t, dir)
	var crash map[string][]byte
	sharded.Engine.SetRebalanceBarrier(func() { crash = snapshotDirFiles(t, dir) })
	moved, err := sharded.Engine.Rebalance(shard.Plan{Moves: []shard.GroupMove{{Table: g.Table, Key: g.Key, To: to}}})
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("moved %d groups, want 1", moved)
	}
	if crash == nil {
		t.Fatal("rebalance barrier never fired")
	}
	// The kill-mid-protocol image is byte-identical to the pre-rebalance
	// files: nothing about the move persists until commit.
	for _, name := range []string{"dir.ckpt", "dir.delta"} {
		if !bytes.Equal(pre[name], crash[name]) {
			t.Fatalf("%s changed before commit: %d bytes -> %d bytes", name, len(pre[name]), len(crash[name]))
		}
	}
	// A recovery from the crash image reconstructs the pre-rebalance
	// placement exactly.
	crashDir := t.TempDir()
	for name, b := range crash {
		if err := os.WriteFile(filepath.Join(crashDir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, st, err := shard.OpenDirStore(crashDir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Assign[g.Table+"\x00"+g.Key] != g.Shard {
		t.Fatalf("crash image places group on shard %d, want pre-rebalance %d", st.Assign[g.Table+"\x00"+g.Key], g.Shard)
	}

	// Restart adoption from the COMMITTED directory: a fresh engine over
	// the live files (same seed reloads the same base data) must land the
	// moved group on its destination and pass the full invariant.
	if err := sharded.Engine.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := workload.BuildShardedDir(p, core.ModeGrouped, 4, 1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reopened.Engine.GroupOwner(g.Table, xdm.Int(rootIDForKey(t, p, g.Key))); got != to {
		t.Fatalf("reopened engine places moved group on shard %d, want %d", got, to)
	}
	if err := reopened.Engine.VerifyDirectory(); err != nil {
		t.Fatal(err)
	}
}
