package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quark/internal/core"
	"quark/internal/dispatch"
	"quark/internal/outbox"
	"quark/internal/workload"
)

// TestGoldenAdaptive is the mixed-mode equivalence suite: every scenario
// runs on an adaptive engine whose trigger groups are dealt arbitrary
// per-group modes (three seeds, so different mixes), with a forced live
// mode switch before every unit, at shard counts 0/2/4 and across
// sync/async/replayed delivery — and every combination must come out
// byte-identical to the committed single-engine MATERIALIZED goldens.
func TestGoldenAdaptive(t *testing.T) {
	styles := []struct {
		name string
		opts RunOpts
	}{
		{"sync", RunOpts{}},
		{"async", RunOpts{Async: true}},
		{"replayed", RunOpts{Async: true, Replayed: true}},
	}
	for _, path := range scenarioFiles(t) {
		name := scenarioName(path)
		t.Run(name, func(t *testing.T) {
			sc, err := ParseFile(path, name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{0, 2, 4} {
				for _, style := range styles {
					for seed := int64(1); seed <= 3; seed++ {
						opts := style.opts
						opts.Shards = shards
						opts.Adaptive = true
						opts.ModeSeed = seed
						opts.ModeFlips = true
						label := fmt.Sprintf("shards=%d/%s/seed=%d", shards, style.name, seed)
						single, err := RunStyle(sc, core.ModeGrouped, opts)
						if err != nil {
							t.Fatalf("%s single: %v", label, err)
						}
						opts.Batched = true
						batched, err := RunStyle(sc, core.ModeGrouped, opts)
						if err != nil {
							t.Fatalf("%s batched: %v", label, err)
						}
						got := "== single ==\n" + single + "== batched ==\n" + batched
						if got != string(want) {
							t.Fatalf("%s diverges from MATERIALIZED golden:\n%s", label, diffText(string(want), got))
						}
					}
				}
			}
		})
	}
}

// TestShardFuzzModeFlips is the seeded differential fuzzer with live mode
// migrations injected mid-stream: the generated stream interleaves mode
// flips with updates/inserts/deletes/moves/batches, the adaptive engines
// apply them while the oracle ignores them, and the invocation streams
// must stay byte-identical op for op — across 0/2/4 shards and
// sync/async/outbox delivery.
func TestShardFuzzModeFlips(t *testing.T) {
	p := workload.Params{Depth: 2, LeafTuples: 128, Fanout: 16, NumTriggers: 16, NumSatisfied: 2}
	sp := workload.DefaultStream(*fuzzOps)
	sp.ModeFlipFrac = 0.12
	for _, n := range []int{0, 2, 4} {
		for _, style := range []fuzzStyle{fuzzSync, fuzzAsync, fuzzOutbox} {
			t.Run(fmt.Sprintf("shards=%d/%s", n, style), func(t *testing.T) {
				seed := *fuzzSeed
				t.Logf("replay with: go test ./internal/conformance -run TestShardFuzzModeFlips -seed %d -fuzzops %d", seed, *fuzzOps)
				fuzzModeFlipsOne(t, p, sp, n, style, seed)
			})
		}
	}
}

// enableOutbox attaches a durable log to whichever engine shape the
// applier wraps.
func enableOutbox(a workload.Applier, lg *outbox.Log) error {
	switch x := a.(type) {
	case workload.SingleApplier:
		return x.E.EnableOutbox(lg, nil)
	case workload.ShardApplier:
		return x.E.EnableOutbox(lg, nil)
	default:
		return fmt.Errorf("unknown applier %T", a)
	}
}

// fuzzModeFlipsOne runs one configuration: the oracle is a plain
// MATERIALIZED single engine that ignores flips entirely; the subject is
// an adaptive engine (single for shards == 0, a fleet otherwise) that
// applies every flip as a live two-phase migration.
func fuzzModeFlipsOne(t *testing.T, p workload.Params, sp workload.StreamParams, shards int, style fuzzStyle, seed int64) {
	t.Helper()
	ops, err := workload.GenStream(p, sp, seed)
	if err != nil {
		t.Fatal(err)
	}
	flips := 0
	for _, op := range ops {
		if op.ModeFlip != nil {
			flips++
		}
	}
	if flips == 0 {
		t.Fatalf("stream has no mode flips; raise -fuzzops (got %d ops)", len(ops))
	}

	oracle, err := workload.Build(p, core.ModeMaterialized, seed)
	if err != nil {
		t.Fatal(err)
	}
	var oCap, sCap capture
	oracle.Engine.RegisterAction("notify", oCap.action)

	var sApp workload.Applier
	var sDrain func()
	var sClose func() error
	var rowCount func(table string) int
	if shards == 0 {
		subject, err := workload.BuildAdaptive(p, core.ModeGrouped, seed)
		if err != nil {
			t.Fatal(err)
		}
		subject.Engine.RegisterAction("notify", sCap.action)
		sApp = workload.SingleApplier{E: subject.Engine, FlipModes: true}
		sDrain, sClose = subject.Engine.Drain, subject.Engine.Close
		rowCount = subject.DB.RowCount
		if style != fuzzSync {
			if err := subject.Engine.EnableAsyncDispatch(dispatch.Config{Workers: 4, QueueCap: 256, Policy: dispatch.Block}); err != nil {
				t.Fatal(err)
			}
		}
	} else {
		subject, err := workload.BuildShardedAdaptive(p, core.ModeGrouped, shards, seed)
		if err != nil {
			t.Fatal(err)
		}
		subject.Engine.RegisterAction("notify", sCap.action)
		sApp = workload.ShardApplier{E: subject.Engine, FlipModes: true}
		sDrain, sClose = subject.Engine.Drain, subject.Engine.Close
		rowCount = func(table string) int {
			total := 0
			for i := 0; i < subject.Engine.NumShards(); i++ {
				total += subject.Engine.Shard(i).DB().RowCount(table)
			}
			return total
		}
		if style != fuzzSync {
			if err := subject.Engine.EnableAsyncDispatch(dispatch.Config{Workers: 4, QueueCap: 256, Policy: dispatch.Block}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if style != fuzzSync {
		defer func() { _ = sClose() }()
	} else {
		sDrain = func() {}
	}
	if style == fuzzOutbox {
		// nil sink: the durable log underlies the in-process actions, so
		// every delivery pays append+ack while the capture path stays
		// identical to the other styles.
		lg, err := outbox.Open(t.TempDir(), outbox.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer lg.Close()
		if err := enableOutbox(sApp, lg); err != nil {
			t.Fatal(err)
		}
	}

	oApp := workload.SingleApplier{E: oracle.Engine}
	for i, op := range ops {
		if err := workload.ApplyOp(oApp, p, op); err != nil {
			t.Fatalf("op %d (%+v) on oracle: %v [replay: -seed %d]", i, op, err, seed)
		}
		if err := workload.ApplyOp(sApp, p, op); err != nil {
			t.Fatalf("op %d (%+v) on subject: %v [replay: -seed %d]", i, op, err, seed)
		}
		sDrain()
		want, got := oCap.take(), sCap.take()
		if sortedJoin(want) != sortedJoin(got) {
			t.Fatalf("op %d (%+v) diverges [replay: -seed %d]:\noracle:\n  %s\nsubject:\n  %s",
				i, op, seed, strings.Join(want, "\n  "), strings.Join(got, "\n  "))
		}
		wantSeq, gotSeq := perTrigger(want), perTrigger(got)
		for trig, ws := range wantSeq {
			if strings.Join(ws, "\n") != strings.Join(gotSeq[trig], "\n") {
				t.Fatalf("op %d: trigger %s delivery order diverges [replay: -seed %d]", i, trig, seed)
			}
		}
	}

	// End-state agreement on the leaf table.
	leaf := p.TableName(p.Depth - 1)
	if want, got := oracle.DB.RowCount(leaf), rowCount(leaf); want != got {
		t.Errorf("after %d ops subject holds %d leaf rows, oracle %d [replay: -seed %d]", len(ops), got, want, seed)
	}
}
