//go:build sqlite

package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"quark/internal/core"
	"quark/internal/reldb"
	"quark/internal/relsql"
)

// TestSQLiteBackendGoldens replays every golden scenario with the
// real-database plan shadow attached: each translated plan evaluation is
// re-executed as rendered SQL against a mirrored backend with real
// INSERTED_/DELETED_ transition tables, and the notification log must still
// come out byte-identical to the committed goldens. Any SQL/evaluator
// divergence fails the run itself, so passing here means the rendered
// trigger SQL is executable AND correct for every firing of every scenario.
func TestSQLiteBackendGoldens(t *testing.T) {
	if !relsql.Available() {
		t.Fatal("relsql backend not compiled in despite sqlite build tag")
	}
	modes := []core.Mode{core.ModeUngrouped, core.ModeGrouped, core.ModeGroupedAgg}
	for _, path := range scenarioFiles(t) {
		name := scenarioName(path)
		t.Run(name, func(t *testing.T) {
			sc, err := ParseFile(path, name)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range modes {
				var vSingle, vBatched int64
				single, err := RunStyle(sc, mode, RunOpts{Backend: "sqlite", BackendVerified: &vSingle})
				if err != nil {
					t.Fatalf("%s single: %v", mode, err)
				}
				batched, err := RunStyle(sc, mode, RunOpts{Backend: "sqlite", Batched: true, BackendVerified: &vBatched})
				if err != nil {
					t.Fatalf("%s batched: %v", mode, err)
				}
				got := "== single ==\n" + single + "== batched ==\n" + batched
				if got != string(want) {
					t.Errorf("%s diverges from golden under the sqlite backend:\n%s", mode, diffText(string(want), got))
				}
				if vSingle == 0 {
					t.Errorf("%s single: backend shadow verified no plan evaluations", mode)
				}
				if vBatched == 0 {
					t.Errorf("%s batched: backend shadow verified no plan evaluations", mode)
				}
				t.Logf("%s: verified %d single + %d batched plan evaluations", mode, vSingle, vBatched)
			}
		})
	}
}

// backendPlanText renders the regresql-style cost baseline for one scenario:
// the backend's EXPLAIN QUERY PLAN output for every installed trigger plan,
// per translation mode, in deterministic order.
func backendPlanText(t *testing.T, sc *Scenario) string {
	t.Helper()
	var sb strings.Builder
	for _, mode := range []core.Mode{core.ModeUngrouped, core.ModeGrouped, core.ModeGroupedAgg} {
		db, err := reldb.Open(sc.Schema)
		if err != nil {
			t.Fatal(err)
		}
		e := core.NewEngine(db, mode)
		e.RegisterAction("notify", func(core.Invocation) error { return nil })
		for _, v := range sc.Views {
			if _, err := e.CreateView(v.Name, v.Src); err != nil {
				t.Fatalf("view %s: %v", v.Name, err)
			}
		}
		for _, src := range sc.Triggers {
			if err := e.CreateTrigger(src); err != nil {
				t.Fatalf("trigger: %v", err)
			}
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		sh, err := relsql.NewShadow(db)
		if err != nil {
			t.Fatal(err)
		}
		texts := e.SQLTexts()
		keys := make([]string, 0, len(texts))
		for k := range texts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if texts[k] == "" {
				continue // materialized bodies render no SQL
			}
			plan, err := sh.ExplainPlan(texts[k])
			if err != nil {
				t.Fatalf("%s %s: %v", mode, k, err)
			}
			fmt.Fprintf(&sb, "== %s %s ==\n%s", mode, k, plan)
		}
		if err := sh.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

// TestSQLitePlanBaselines pins the backend query plan of every trigger's
// rendered SQL to a committed baseline (testdata/plans/*.baseline),
// regresql-style: a refactor that silently degrades a plan — a hash join
// collapsing to a nested loop, a lost filter — shows up as a baseline diff
// here even while results stay correct. -update regenerates the baselines.
func TestSQLitePlanBaselines(t *testing.T) {
	for _, path := range scenarioFiles(t) {
		name := scenarioName(path)
		t.Run(name, func(t *testing.T) {
			sc, err := ParseFile(path, name)
			if err != nil {
				t.Fatal(err)
			}
			got := backendPlanText(t, sc)
			if got == "" {
				t.Fatal("no trigger plans rendered for scenario")
			}
			basePath := filepath.Join("testdata", "plans", name+".baseline")
			if *update {
				if err := os.MkdirAll(filepath.Dir(basePath), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(basePath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", basePath)
				return
			}
			want, err := os.ReadFile(basePath)
			if err != nil {
				t.Fatalf("%v (run `go test -tags sqlite ./internal/conformance -run TestSQLitePlanBaselines -update` to create it)", err)
			}
			if got != string(want) {
				t.Errorf("query plan drift vs baseline:\n%s", diffText(string(want), got))
			}
		})
	}
}
