// Package wire is the serialization boundary of the trigger pipeline: a
// deterministic, self-describing codec for trigger invocations. The paper
// defines an action as "a call to an external function" (Section 2.2), and
// an external function lives in another process — so the engine's
// in-memory Invocation (trigger name, view-level event, OLD_NODE/NEW_NODE
// XDM trees, evaluated action arguments) must cross a byte boundary
// without losing information and without requiring the consumer to run a
// live engine. Records round-trip exactly: Decode(Encode(r)) reproduces r
// field-for-field, including whitespace-only text nodes and the bit
// pattern of float arguments, which the XML serializer cannot promise.
//
// Two encodings are provided over the same Record:
//
//   - a compact length-prefixed binary form (Encode/Decode), used by the
//     outbox segment log, deterministic byte-for-byte for equal records;
//   - a JSON form (MarshalJSON/UnmarshalJSON), for file/pipe consumers
//     that want self-describing deltas greppable without this package.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"quark/internal/reldb"
	"quark/internal/xdm"
)

// Record is one serialized trigger invocation. Seq is the outbox sequence
// number (0 until assigned by an append); the remaining fields mirror
// core.Invocation.
type Record struct {
	Seq     uint64
	Trigger string
	Event   reldb.Event
	Old     *xdm.Node // nil for INSERT events
	New     *xdm.Node // nil for DELETE events
	Args    []xdm.Value
}

// Format versioning: a consumer rejecting an unknown version is how the
// log stays replayable across releases.
const (
	magic   = 0xA7 // first byte of every binary record
	version = 1
)

// Value kind tags in the binary form (decoupled from xdm.Kind's numeric
// values so the wire format survives internal enum reordering).
const (
	tagNull  = 0
	tagFalse = 1
	tagTrue  = 2
	tagInt   = 3
	tagFloat = 4
	tagStr   = 5
	tagNode  = 6
	tagSeq   = 7
)

// Node kind tags.
const (
	tagElem = 0
	tagAttr = 1
	tagText = 2
)

// maxNodeDepth bounds decoder recursion: CRC framing catches bit-rot but
// not crafted input, and an unbounded nesting depth would let a few bytes
// per level overflow the stack instead of returning an error. Real view
// trees are a handful of levels deep; 10k is far beyond any of them.
const maxNodeDepth = 10000

// Encode renders the record in the deterministic binary form.
func Encode(r *Record) []byte {
	return AppendEncode(nil, r)
}

// AppendEncode appends the record's binary form to dst and returns the
// extended slice.
func AppendEncode(dst []byte, r *Record) []byte {
	dst = append(dst, magic, version)
	dst = binary.AppendUvarint(dst, r.Seq)
	dst = appendString(dst, r.Trigger)
	dst = append(dst, byte(r.Event))
	dst = appendMaybeNode(dst, r.Old)
	dst = appendMaybeNode(dst, r.New)
	dst = binary.AppendUvarint(dst, uint64(len(r.Args)))
	for _, a := range r.Args {
		dst = appendValue(dst, a)
	}
	return dst
}

// Decode parses a binary record. The whole input must be consumed:
// trailing bytes are an error, so framing bugs surface here rather than
// as silently skewed replays.
func Decode(b []byte) (*Record, error) {
	d := &decoder{b: b}
	r, err := d.record()
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.b) {
		return nil, fmt.Errorf("wire: %d trailing bytes after record", len(d.b)-d.pos)
	}
	return r, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendValue(dst []byte, v xdm.Value) []byte {
	switch v.Kind() {
	case xdm.KindNull:
		return append(dst, tagNull)
	case xdm.KindBool:
		if v.AsBool() {
			return append(dst, tagTrue)
		}
		return append(dst, tagFalse)
	case xdm.KindInt:
		dst = append(dst, tagInt)
		return binary.AppendVarint(dst, v.AsInt())
	case xdm.KindFloat:
		dst = append(dst, tagFloat)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.AsFloat()))
	case xdm.KindString:
		dst = append(dst, tagStr)
		return appendString(dst, v.AsString())
	case xdm.KindNode:
		dst = append(dst, tagNode)
		return appendNode(dst, v.AsNode())
	case xdm.KindSeq:
		dst = append(dst, tagSeq)
		seq := v.AsSeq()
		dst = binary.AppendUvarint(dst, uint64(len(seq)))
		for _, e := range seq {
			dst = appendValue(dst, e)
		}
		return dst
	default:
		// Unreachable with the current xdm kinds; encode as null so the
		// record stays parseable.
		return append(dst, tagNull)
	}
}

func appendMaybeNode(dst []byte, n *xdm.Node) []byte {
	if n == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return appendNode(dst, n)
}

// appendNode encodes the node structurally (kind, name, text, attributes,
// children) rather than as serialized XML: XML parsing normalizes
// whitespace-only text nodes away, which would break round-trip equality.
func appendNode(dst []byte, n *xdm.Node) []byte {
	switch n.Kind {
	case xdm.ElementNode:
		dst = append(dst, tagElem)
		dst = appendString(dst, n.Name)
		dst = binary.AppendUvarint(dst, uint64(len(n.Attrs)))
		for _, a := range n.Attrs {
			dst = appendString(dst, a.Name)
			dst = appendString(dst, a.Text)
		}
		dst = binary.AppendUvarint(dst, uint64(len(n.Children)))
		for _, c := range n.Children {
			dst = appendNode(dst, c)
		}
		return dst
	case xdm.AttributeNode:
		dst = append(dst, tagAttr)
		dst = appendString(dst, n.Name)
		return appendString(dst, n.Text)
	default: // TextNode
		dst = append(dst, tagText)
		return appendString(dst, n.Text)
	}
}

type decoder struct {
	b     []byte
	pos   int
	depth int // current node-recursion depth
}

func (d *decoder) record() (*Record, error) {
	m, err := d.byte()
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("wire: bad magic byte 0x%02x", m)
	}
	v, err := d.byte()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("wire: unsupported record version %d", v)
	}
	r := &Record{}
	if r.Seq, err = d.uvarint(); err != nil {
		return nil, err
	}
	if r.Trigger, err = d.string(); err != nil {
		return nil, err
	}
	ev, err := d.byte()
	if err != nil {
		return nil, err
	}
	if ev > byte(reldb.EvDelete) {
		return nil, fmt.Errorf("wire: unknown event %d", ev)
	}
	r.Event = reldb.Event(ev)
	if r.Old, err = d.maybeNode(); err != nil {
		return nil, err
	}
	if r.New, err = d.maybeNode(); err != nil {
		return nil, err
	}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)) {
		return nil, fmt.Errorf("wire: argument count %d exceeds input", n)
	}
	if n > 0 {
		r.Args = make([]xdm.Value, n)
		for i := range r.Args {
			if r.Args[i], err = d.value(); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

func (d *decoder) byte() (byte, error) {
	if d.pos >= len(d.b) {
		return 0, fmt.Errorf("wire: truncated record at offset %d", d.pos)
	}
	c := d.b[d.pos]
	d.pos++
	return c, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad uvarint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: bad varint at offset %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.b)-d.pos) {
		return "", fmt.Errorf("wire: string length %d exceeds input at offset %d", n, d.pos)
	}
	s := string(d.b[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *decoder) value() (xdm.Value, error) {
	tag, err := d.byte()
	if err != nil {
		return xdm.Null, err
	}
	switch tag {
	case tagNull:
		return xdm.Null, nil
	case tagFalse:
		return xdm.False, nil
	case tagTrue:
		return xdm.True, nil
	case tagInt:
		i, err := d.varint()
		return xdm.Int(i), err
	case tagFloat:
		if len(d.b)-d.pos < 8 {
			return xdm.Null, fmt.Errorf("wire: truncated float at offset %d", d.pos)
		}
		bits := binary.BigEndian.Uint64(d.b[d.pos:])
		d.pos += 8
		return xdm.Float(math.Float64frombits(bits)), nil
	case tagStr:
		s, err := d.string()
		return xdm.Str(s), err
	case tagNode:
		n, err := d.node()
		return xdm.NodeVal(n), err
	case tagSeq:
		n, err := d.uvarint()
		if err != nil {
			return xdm.Null, err
		}
		if n > uint64(len(d.b)-d.pos) {
			return xdm.Null, fmt.Errorf("wire: sequence length %d exceeds input", n)
		}
		seq := make([]xdm.Value, n)
		for i := range seq {
			if seq[i], err = d.value(); err != nil {
				return xdm.Null, err
			}
		}
		return xdm.Seq(seq), nil
	default:
		return xdm.Null, fmt.Errorf("wire: unknown value tag %d at offset %d", tag, d.pos-1)
	}
}

func (d *decoder) maybeNode() (*xdm.Node, error) {
	present, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch present {
	case 0:
		return nil, nil
	case 1:
		return d.node()
	default:
		return nil, fmt.Errorf("wire: bad node presence byte %d", present)
	}
}

func (d *decoder) node() (*xdm.Node, error) {
	if d.depth++; d.depth > maxNodeDepth {
		return nil, fmt.Errorf("wire: node nesting exceeds depth %d", maxNodeDepth)
	}
	defer func() { d.depth-- }()
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagElem:
		n := &xdm.Node{Kind: xdm.ElementNode}
		if n.Name, err = d.string(); err != nil {
			return nil, err
		}
		na, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if na > uint64(len(d.b)-d.pos) {
			return nil, fmt.Errorf("wire: attribute count %d exceeds input", na)
		}
		for i := uint64(0); i < na; i++ {
			name, err := d.string()
			if err != nil {
				return nil, err
			}
			text, err := d.string()
			if err != nil {
				return nil, err
			}
			n.Attrs = append(n.Attrs, xdm.Attr(name, text))
		}
		nc, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if nc > uint64(len(d.b)-d.pos) {
			return nil, fmt.Errorf("wire: child count %d exceeds input", nc)
		}
		for i := uint64(0); i < nc; i++ {
			c, err := d.node()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		}
		return n, nil
	case tagAttr:
		n := &xdm.Node{Kind: xdm.AttributeNode}
		if n.Name, err = d.string(); err != nil {
			return nil, err
		}
		if n.Text, err = d.string(); err != nil {
			return nil, err
		}
		return n, nil
	case tagText:
		n := &xdm.Node{Kind: xdm.TextNode}
		if n.Text, err = d.string(); err != nil {
			return nil, err
		}
		return n, nil
	default:
		return nil, fmt.Errorf("wire: unknown node tag %d at offset %d", tag, d.pos-1)
	}
}

// Equal reports field-for-field record equality, the codec's round-trip
// contract: Equal(r, mustDecode(Encode(r))) for every valid r.
func Equal(a, b *Record) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Seq != b.Seq || a.Trigger != b.Trigger || a.Event != b.Event {
		return false
	}
	if !nodeEqual(a.Old, b.Old) || !nodeEqual(a.New, b.New) {
		return false
	}
	if len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !valueEqual(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// nodeEqual is structural equality including attribute order and
// whitespace-only text nodes — stricter than xdm.(*Node).DeepEqual, which
// treats attributes as unordered. The codec preserves order, so Equal
// checks it.
func nodeEqual(a, b *xdm.Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name || a.Text != b.Text ||
		len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i].Name != b.Attrs[i].Name || a.Attrs[i].Text != b.Attrs[i].Text {
			return false
		}
	}
	for i := range a.Children {
		if !nodeEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// valueEqual distinguishes kinds the way the codec does: unlike xdm.Equal
// it does not unify 2 (int) with 2.0 (float), and it compares floats by
// bit pattern so NaN round-trips count as equal.
func valueEqual(a, b xdm.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case xdm.KindFloat:
		return math.Float64bits(a.AsFloat()) == math.Float64bits(b.AsFloat())
	case xdm.KindNode:
		return nodeEqual(a.AsNode(), b.AsNode())
	case xdm.KindSeq:
		as, bs := a.AsSeq(), b.AsSeq()
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if !valueEqual(as[i], bs[i]) {
				return false
			}
		}
		return true
	default:
		return xdm.Equal(a, b)
	}
}

// --- JSON form ---

// jsonRecord is the JSON shape of a Record: every field self-describing,
// large integers carried as strings so no consumer mangles them through
// float64.
type jsonRecord struct {
	Seq     uint64      `json:"seq"`
	Trigger string      `json:"trigger"`
	Event   string      `json:"event"`
	Old     *jsonNode   `json:"old,omitempty"`
	New     *jsonNode   `json:"new,omitempty"`
	Args    []jsonValue `json:"args,omitempty"`
}

type jsonNode struct {
	Kind     string      `json:"kind"`
	Name     string      `json:"name,omitempty"`
	Text     string      `json:"text,omitempty"`
	Attrs    [][2]string `json:"attrs,omitempty"`
	Children []*jsonNode `json:"children,omitempty"`
}

type jsonValue struct {
	Kind  string      `json:"kind"`
	Bool  *bool       `json:"bool,omitempty"`
	Int   *string     `json:"int,omitempty"` // decimal string: exact int64
	Float *string     `json:"float,omitempty"`
	Str   *string     `json:"str,omitempty"`
	Node  *jsonNode   `json:"node,omitempty"`
	Seq   []jsonValue `json:"seq,omitempty"`
}

// MarshalJSON renders the record in the self-describing JSON form. The
// output is deterministic: field order is fixed by the struct layout,
// ints are decimal strings, and floats are the hex digits of their IEEE
// bit pattern (see toJSONValue) so no consumer mangles them through a
// decimal round trip.
func (r *Record) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonRecord{
		Seq:     r.Seq,
		Trigger: r.Trigger,
		Event:   r.Event.String(),
		Old:     toJSONNode(r.Old),
		New:     toJSONNode(r.New),
		Args:    toJSONValues(r.Args),
	})
}

// UnmarshalJSON parses the JSON form produced by MarshalJSON.
func (r *Record) UnmarshalJSON(b []byte) error {
	var jr jsonRecord
	if err := json.Unmarshal(b, &jr); err != nil {
		return err
	}
	ev, err := parseEvent(jr.Event)
	if err != nil {
		return err
	}
	args, err := fromJSONValues(jr.Args)
	if err != nil {
		return err
	}
	*r = Record{
		Seq:     jr.Seq,
		Trigger: jr.Trigger,
		Event:   ev,
		Old:     fromJSONNode(jr.Old),
		New:     fromJSONNode(jr.New),
		Args:    args,
	}
	return nil
}

func parseEvent(s string) (reldb.Event, error) {
	for _, ev := range []reldb.Event{reldb.EvInsert, reldb.EvUpdate, reldb.EvDelete} {
		if ev.String() == s {
			return ev, nil
		}
	}
	return 0, fmt.Errorf("wire: unknown event %q", s)
}

func toJSONNode(n *xdm.Node) *jsonNode {
	if n == nil {
		return nil
	}
	jn := &jsonNode{Name: n.Name, Text: n.Text}
	switch n.Kind {
	case xdm.ElementNode:
		jn.Kind = "elem"
	case xdm.AttributeNode:
		jn.Kind = "attr"
	default:
		jn.Kind = "text"
	}
	for _, a := range n.Attrs {
		jn.Attrs = append(jn.Attrs, [2]string{a.Name, a.Text})
	}
	for _, c := range n.Children {
		jn.Children = append(jn.Children, toJSONNode(c))
	}
	return jn
}

// fromJSONNode needs no explicit depth cap: encoding/json itself rejects
// documents nested deeper than 10000, which bounds this recursion.
func fromJSONNode(jn *jsonNode) *xdm.Node {
	if jn == nil {
		return nil
	}
	n := &xdm.Node{Name: jn.Name, Text: jn.Text}
	switch jn.Kind {
	case "elem":
		n.Kind = xdm.ElementNode
	case "attr":
		n.Kind = xdm.AttributeNode
	default:
		n.Kind = xdm.TextNode
	}
	for _, a := range jn.Attrs {
		n.Attrs = append(n.Attrs, xdm.Attr(a[0], a[1]))
	}
	for _, c := range jn.Children {
		n.Children = append(n.Children, fromJSONNode(c))
	}
	return n
}

func toJSONValues(vs []xdm.Value) []jsonValue {
	if len(vs) == 0 {
		return nil
	}
	out := make([]jsonValue, len(vs))
	for i, v := range vs {
		out[i] = toJSONValue(v)
	}
	return out
}

func toJSONValue(v xdm.Value) jsonValue {
	switch v.Kind() {
	case xdm.KindBool:
		b := v.AsBool()
		return jsonValue{Kind: "bool", Bool: &b}
	case xdm.KindInt:
		s := fmt.Sprintf("%d", v.AsInt())
		return jsonValue{Kind: "int", Int: &s}
	case xdm.KindFloat:
		// Hex float form: exact bits, no shortest-representation parsing
		// subtleties across JSON implementations.
		s := fmt.Sprintf("%x", math.Float64bits(v.AsFloat()))
		return jsonValue{Kind: "float", Float: &s}
	case xdm.KindString:
		s := v.AsString()
		return jsonValue{Kind: "str", Str: &s}
	case xdm.KindNode:
		return jsonValue{Kind: "node", Node: toJSONNode(v.AsNode())}
	case xdm.KindSeq:
		return jsonValue{Kind: "seq", Seq: toJSONValues(v.AsSeq())}
	default:
		return jsonValue{Kind: "null"}
	}
}

func fromJSONValues(js []jsonValue) ([]xdm.Value, error) {
	if len(js) == 0 {
		return nil, nil
	}
	out := make([]xdm.Value, len(js))
	for i, jv := range js {
		v, err := fromJSONValue(jv)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func fromJSONValue(jv jsonValue) (xdm.Value, error) {
	switch jv.Kind {
	case "null":
		return xdm.Null, nil
	case "bool":
		if jv.Bool == nil {
			return xdm.Null, fmt.Errorf("wire: bool value missing payload")
		}
		return xdm.Bool(*jv.Bool), nil
	case "int":
		if jv.Int == nil {
			return xdm.Null, fmt.Errorf("wire: int value missing payload")
		}
		// strconv, not Sscanf: the decoder must reject trailing garbage.
		i, err := strconv.ParseInt(*jv.Int, 10, 64)
		if err != nil {
			return xdm.Null, fmt.Errorf("wire: bad int %q: %w", *jv.Int, err)
		}
		return xdm.Int(i), nil
	case "float":
		if jv.Float == nil {
			return xdm.Null, fmt.Errorf("wire: float value missing payload")
		}
		bits, err := strconv.ParseUint(*jv.Float, 16, 64)
		if err != nil {
			return xdm.Null, fmt.Errorf("wire: bad float bits %q: %w", *jv.Float, err)
		}
		return xdm.Float(math.Float64frombits(bits)), nil
	case "str":
		if jv.Str == nil {
			return xdm.Null, fmt.Errorf("wire: string value missing payload")
		}
		return xdm.Str(*jv.Str), nil
	case "node":
		return xdm.NodeVal(fromJSONNode(jv.Node)), nil
	case "seq":
		vs, err := fromJSONValues(jv.Seq)
		if err != nil {
			return xdm.Null, err
		}
		if vs == nil {
			vs = []xdm.Value{}
		}
		return xdm.Seq(vs), nil
	default:
		return xdm.Null, fmt.Errorf("wire: unknown value kind %q", jv.Kind)
	}
}
