package wire

import (
	"encoding/json"
	"math"
	"testing"

	"quark/internal/reldb"
	"quark/internal/xdm"
)

func sampleRecords() []*Record {
	node := xdm.Elem("sector",
		xdm.Attr("name", "tech"),
		xdm.Elem("stock", xdm.Attr("symbol", "QRK"), xdm.Attr("price", "31.40")),
		xdm.TextNd("  "), // whitespace-only text: XML parsing would drop it
		xdm.Elem("stock", xdm.Attr("symbol", "XML"), xdm.TextNd("9.80")),
	)
	return []*Record{
		{},
		{Trigger: "t0", Event: reldb.EvInsert},
		{
			Seq:     42,
			Trigger: "client007",
			Event:   reldb.EvUpdate,
			Old:     node.Copy(),
			New:     node,
			Args: []xdm.Value{
				xdm.Null,
				xdm.True,
				xdm.False,
				xdm.Int(math.MinInt64),
				xdm.Int(math.MaxInt64),
				xdm.Float(0.1 + 0.2), // not exactly representable in decimal
				xdm.Float(math.Inf(-1)),
				xdm.Str("quotes \" and <tags> & unicode é世"),
				xdm.Str(""),
				xdm.NodeVal(xdm.Elem("x", xdm.Attr("a", "1"))),
				xdm.Seq([]xdm.Value{xdm.Int(1), xdm.Str("two"), xdm.Seq(nil)}),
			},
		},
		{
			Trigger: "deep",
			Event:   reldb.EvDelete,
			Old:     xdm.Elem("a", xdm.Elem("b", xdm.Elem("c", xdm.TextNd("leaf")))),
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for i, r := range sampleRecords() {
		b := Encode(r)
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !Equal(r, got) {
			t.Errorf("record %d: round trip mismatch\n in: %+v\nout: %+v", i, r, got)
		}
		// Determinism: equal records encode to identical bytes.
		if b2 := Encode(got); string(b) != string(b2) {
			t.Errorf("record %d: encoding is not deterministic", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	for i, r := range sampleRecords() {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("record %d: marshal: %v", i, err)
		}
		var got Record
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("record %d: unmarshal: %v", i, err)
		}
		if !Equal(r, &got) {
			t.Errorf("record %d: JSON round trip mismatch\n in: %+v\njson: %s\nout: %+v", i, r, b, &got)
		}
		if b2, _ := json.Marshal(&got); string(b) != string(b2) {
			t.Errorf("record %d: JSON encoding is not deterministic", i)
		}
	}
}

func TestFloatBitPatternSurvives(t *testing.T) {
	nan := math.Float64frombits(0x7ff8000000000001) // a specific NaN payload
	r := &Record{Trigger: "f", Args: []xdm.Value{xdm.Float(nan)}}
	got, err := Decode(Encode(r))
	if err != nil {
		t.Fatal(err)
	}
	if bits := math.Float64bits(got.Args[0].AsFloat()); bits != 0x7ff8000000000001 {
		t.Errorf("NaN payload lost: got bits %x", bits)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	r := sampleRecords()[2]
	good := Encode(r)
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte{0x00}, good[1:]...),
		"bad version":  append([]byte{good[0], 99}, good[2:]...),
		"truncated":    good[:len(good)/2],
		"trailing":     append(append([]byte{}, good...), 0xFF),
		"only header":  good[:2],
		"bogus length": {magic, version, 0, 1, 't', byte(reldb.EvInsert), 0, 0, 0xFF},
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted corrupt input", name)
		}
	}
}

func TestEqualDistinguishesKinds(t *testing.T) {
	a := &Record{Args: []xdm.Value{xdm.Int(2)}}
	b := &Record{Args: []xdm.Value{xdm.Float(2)}}
	if Equal(a, b) {
		t.Error("Equal unified int 2 with float 2.0; the codec must not")
	}
}

// FuzzDecode throws arbitrary bytes at the decoder (it must never panic)
// and checks the re-encode fixed point: anything that decodes successfully
// must re-encode to bytes that decode to an equal record.
func FuzzDecode(f *testing.F) {
	for _, r := range sampleRecords() {
		f.Add(Encode(r))
	}
	f.Add([]byte{magic, version})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := Decode(b)
		if err != nil {
			return
		}
		r2, err := Decode(Encode(r))
		if err != nil {
			t.Fatalf("re-decode of valid record failed: %v", err)
		}
		if !Equal(r, r2) {
			t.Fatalf("re-encode changed the record:\n in: %+v\nout: %+v", r, r2)
		}
	})
}

// FuzzJSON does the same through the JSON form.
func FuzzJSON(f *testing.F) {
	for _, r := range sampleRecords() {
		b, _ := json.Marshal(r)
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		var r Record
		if err := json.Unmarshal(b, &r); err != nil {
			return
		}
		b2, err := json.Marshal(&r)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		var r2 Record
		if err := json.Unmarshal(b2, &r2); err != nil {
			t.Fatalf("re-unmarshal failed: %v", err)
		}
		if !Equal(&r, &r2) {
			t.Fatalf("JSON round trip changed the record")
		}
	})
}

func TestJSONRejectsMalformedPayloads(t *testing.T) {
	cases := map[string]string{
		"int trailing garbage":   `{"trigger":"t","event":"INSERT","args":[{"kind":"int","int":"12abc"}]}`,
		"float trailing garbage": `{"trigger":"t","event":"INSERT","args":[{"kind":"float","float":"3ff0zzz"}]}`,
		"unknown event":          `{"trigger":"t","event":"TRUNCATE"}`,
		"unknown value kind":     `{"trigger":"t","event":"INSERT","args":[{"kind":"blob"}]}`,
	}
	for name, src := range cases {
		var r Record
		if err := r.UnmarshalJSON([]byte(src)); err == nil {
			t.Errorf("%s: UnmarshalJSON accepted %s", name, src)
		}
	}
}
