package sqlshim

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"quark/internal/xdm"
)

// DB is an in-memory SQL database over xdm values.
type DB struct {
	mu     sync.Mutex
	tables map[string]*Table
}

// Table is one stored relation.
type Table struct {
	Name  string
	Cols  []string
	Types []string
	PK    []string
	Rows  [][]xdm.Value
}

// Result is the outcome of a statement; Cols/Rows are nil for DDL/DML.
type Result struct {
	Cols []string
	Rows [][]xdm.Value
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}}
}

// Exec parses and executes one statement with optional ? parameters.
func (db *DB) Exec(sqlText string, args ...xdm.Value) (*Result, error) {
	st, err := parseStmt(sqlText)
	if err != nil {
		return nil, fmt.Errorf("%w\nin SQL:\n%s", err, sqlText)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	res, err := db.execStmt(st, args)
	if err != nil {
		return nil, fmt.Errorf("%w\nin SQL:\n%s", err, sqlText)
	}
	return res, nil
}

func (db *DB) execStmt(st Stmt, args []xdm.Value) (*Result, error) {
	switch s := st.(type) {
	case *CreateTable:
		key := strings.ToLower(s.Name)
		if _, ok := db.tables[key]; ok {
			return nil, fmt.Errorf("sqlshim: table %s already exists", s.Name)
		}
		t := &Table{Name: s.Name, PK: s.PK}
		for _, c := range s.Cols {
			t.Cols = append(t.Cols, c.Name)
			t.Types = append(t.Types, c.Type)
		}
		db.tables[key] = t
		return &Result{}, nil
	case *DropTable:
		key := strings.ToLower(s.Name)
		if _, ok := db.tables[key]; !ok {
			if s.IfExists {
				return &Result{}, nil
			}
			return nil, fmt.Errorf("sqlshim: no such table %s", s.Name)
		}
		delete(db.tables, key)
		return &Result{}, nil
	case *Insert:
		t, ok := db.tables[strings.ToLower(s.Table)]
		if !ok {
			return nil, fmt.Errorf("sqlshim: no such table %s", s.Table)
		}
		ctx := &qctx{db: db, args: args, ctes: map[string]*Result{}}
		env := &env{ctx: ctx, sc: &scope{}}
		for _, rowExprs := range s.Rows {
			vals := make([]xdm.Value, len(rowExprs))
			for i, e := range rowExprs {
				v, err := evalExpr(env, e)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			row := vals
			if len(s.Cols) > 0 {
				if len(vals) != len(s.Cols) {
					return nil, fmt.Errorf("sqlshim: %d values for %d columns", len(vals), len(s.Cols))
				}
				row = make([]xdm.Value, len(t.Cols))
				for i, cn := range s.Cols {
					idx := colIndex(t.Cols, cn)
					if idx < 0 {
						return nil, fmt.Errorf("sqlshim: no column %s in %s", cn, t.Name)
					}
					row[idx] = vals[i]
				}
			} else if len(vals) != len(t.Cols) {
				return nil, fmt.Errorf("sqlshim: %d values for %d columns of %s", len(vals), len(t.Cols), t.Name)
			}
			t.Rows = append(t.Rows, row)
		}
		return &Result{}, nil
	case *Delete:
		t, ok := db.tables[strings.ToLower(s.Table)]
		if !ok {
			return nil, fmt.Errorf("sqlshim: no such table %s", s.Table)
		}
		if s.Where == nil {
			t.Rows = nil
			return &Result{}, nil
		}
		ctx := &qctx{db: db, args: args, ctes: map[string]*Result{}}
		b := &bind{alias: strings.ToLower(t.Name), cols: lowerAll(t.Cols)}
		sc := &scope{binds: []*bind{b}}
		env := &env{ctx: ctx, sc: sc}
		var kept [][]xdm.Value
		for _, r := range t.Rows {
			b.row = r
			v, err := evalExpr(env, s.Where)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.EffectiveBool() {
				kept = append(kept, r)
			}
		}
		t.Rows = kept
		return &Result{}, nil
	case *ExplainStmt:
		lines, err := db.explainQuery(s.Query)
		if err != nil {
			return nil, err
		}
		res := &Result{Cols: []string{"detail"}}
		for _, l := range lines {
			res.Rows = append(res.Rows, []xdm.Value{xdm.Str(l)})
		}
		return res, nil
	case *Query:
		ctx := &qctx{db: db, args: args, ctes: map[string]*Result{}}
		return runQuery(ctx, s, &scope{})
	default:
		return nil, fmt.Errorf("sqlshim: unsupported statement %T", st)
	}
}

func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

func lowerAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = strings.ToLower(s)
	}
	return out
}

// --- query execution ---

// qctx is per-statement execution state.
type qctx struct {
	db   *DB
	args []xdm.Value
	ctes map[string]*Result
}

// scope is a chain of visible row bindings (inner scopes first), enabling
// correlated subqueries and path-step ITEM binding.
type scope struct {
	parent *scope
	binds  []*bind
}

type bind struct {
	alias string // lowercase; "" for unnamed sources
	cols  []string
	row   []xdm.Value
}

func (s *scope) resolve(qual, name string) (xdm.Value, error) {
	qual = strings.ToLower(qual)
	name = strings.ToLower(name)
	for sc := s; sc != nil; sc = sc.parent {
		if qual != "" {
			for _, b := range sc.binds {
				if b.alias == qual {
					for i, c := range b.cols {
						if c == name {
							return b.row[i], nil
						}
					}
					return xdm.Null, fmt.Errorf("sqlshim: no column %s.%s", qual, name)
				}
			}
			continue
		}
		found := false
		var v xdm.Value
		for _, b := range sc.binds {
			for i, c := range b.cols {
				if c == name {
					if found {
						return xdm.Null, fmt.Errorf("sqlshim: ambiguous column %s", name)
					}
					found = true
					v = b.row[i]
				}
			}
		}
		if found {
			return v, nil
		}
	}
	return xdm.Null, fmt.Errorf("sqlshim: no such column %s", name)
}

func runQuery(ctx *qctx, q *Query, parent *scope) (*Result, error) {
	for _, c := range q.With {
		res, err := runCompound(ctx, c.Body, parent)
		if err != nil {
			return nil, fmt.Errorf("in CTE %s: %w", c.Name, err)
		}
		if len(c.Cols) > 0 {
			if len(c.Cols) != len(res.Cols) {
				return nil, fmt.Errorf("sqlshim: CTE %s lists %d columns, body yields %d", c.Name, len(c.Cols), len(res.Cols))
			}
			res = &Result{Cols: c.Cols, Rows: res.Rows}
		}
		ctx.ctes[strings.ToLower(c.Name)] = res
	}
	return runCompound(ctx, q.Body, parent)
}

func runCompound(ctx *qctx, c *Compound, parent *scope) (*Result, error) {
	res, err := runOperand(ctx, c.First, parent)
	if err != nil {
		return nil, err
	}
	for _, t := range c.Rest {
		r2, err := runOperand(ctx, t.Operand, parent)
		if err != nil {
			return nil, err
		}
		if len(r2.Cols) != len(res.Cols) {
			return nil, fmt.Errorf("sqlshim: set operation width mismatch (%d vs %d)", len(res.Cols), len(r2.Cols))
		}
		switch t.Op {
		case "union all":
			res = &Result{Cols: res.Cols, Rows: append(append([][]xdm.Value{}, res.Rows...), r2.Rows...)}
		case "union":
			seen := map[string]bool{}
			var rows [][]xdm.Value
			for _, r := range append(append([][]xdm.Value{}, res.Rows...), r2.Rows...) {
				k := xdm.TupleKey(r)
				if seen[k] {
					continue
				}
				seen[k] = true
				rows = append(rows, r)
			}
			res = &Result{Cols: res.Cols, Rows: rows}
		case "except", "intersect":
			right := map[string]bool{}
			for _, r := range r2.Rows {
				right[xdm.TupleKey(r)] = true
			}
			seen := map[string]bool{}
			var rows [][]xdm.Value
			for _, r := range res.Rows {
				k := xdm.TupleKey(r)
				if seen[k] {
					continue
				}
				seen[k] = true
				if right[k] == (t.Op == "intersect") {
					rows = append(rows, r)
				}
			}
			res = &Result{Cols: res.Cols, Rows: rows}
		}
	}
	return res, nil
}

func runOperand(ctx *qctx, o Operand, parent *scope) (*Result, error) {
	switch x := o.(type) {
	case *SelectCore:
		return runSelect(ctx, x, parent)
	case *ValuesCore:
		env := &env{ctx: ctx, sc: parent}
		var rows [][]xdm.Value
		width := -1
		for _, re := range x.Rows {
			row := make([]xdm.Value, len(re))
			for i, e := range re {
				v, err := evalExpr(env, e)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			if width < 0 {
				width = len(row)
			} else if len(row) != width {
				return nil, fmt.Errorf("sqlshim: VALUES rows differ in width")
			}
			rows = append(rows, row)
		}
		cols := make([]string, width)
		for i := range cols {
			cols[i] = fmt.Sprintf("c%d", i+1)
		}
		return &Result{Cols: cols, Rows: rows}, nil
	case *Compound:
		return runCompound(ctx, x, parent)
	default:
		return nil, fmt.Errorf("sqlshim: unknown operand %T", o)
	}
}

// source is one materialized FROM relation.
type source struct {
	display string
	alias   string
	cols    []string
	rows    [][]xdm.Value
}

func (ctx *qctx) materialize(fi *FromItem, parent *scope) (*source, error) {
	if fi.Sub != nil {
		res, err := runCompound(ctx, fi.Sub, parent)
		if err != nil {
			return nil, err
		}
		return &source{display: "(subquery)", alias: strings.ToLower(fi.Alias), cols: lowerAll(res.Cols), rows: res.Rows}, nil
	}
	key := strings.ToLower(fi.Table)
	alias := strings.ToLower(fi.Alias)
	if alias == "" {
		alias = key
	}
	if cte, ok := ctx.ctes[key]; ok {
		return &source{display: fi.Table, alias: alias, cols: lowerAll(cte.Cols), rows: cte.Rows}, nil
	}
	if t, ok := ctx.db.tables[key]; ok {
		return &source{display: fi.Table, alias: alias, cols: lowerAll(t.Cols), rows: t.Rows}, nil
	}
	return nil, fmt.Errorf("sqlshim: no such table %s", fi.Table)
}

// joinStrategy is the statically chosen execution for one join step; it is
// shared with EXPLAIN QUERY PLAN so plan shape is data-independent.
type joinStrategy struct {
	equi     []equiPair
	residual []Expr
}

type equiPair struct {
	left     *ColE // probe-side column (qualified)
	rightCol string
}

func planJoin(on Expr, leftAliases map[string]bool, rightAlias string, rightCols []string) joinStrategy {
	var st joinStrategy
	for _, conj := range flattenAnd(on) {
		if eq, ok := conj.(*BinaryE); ok && eq.Op == "=" {
			l, lok := eq.L.(*ColE)
			r, rok := eq.R.(*ColE)
			if lok && rok && l.Qual != "" && r.Qual != "" {
				lq, rq := strings.ToLower(l.Qual), strings.ToLower(r.Qual)
				if leftAliases[lq] && rq == rightAlias && colIndex(rightCols, r.Name) >= 0 {
					st.equi = append(st.equi, equiPair{left: l, rightCol: r.Name})
					continue
				}
				if leftAliases[rq] && lq == rightAlias && colIndex(rightCols, l.Name) >= 0 {
					st.equi = append(st.equi, equiPair{left: r, rightCol: l.Name})
					continue
				}
			}
		}
		st.residual = append(st.residual, conj)
	}
	return st
}

func flattenAnd(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if l, ok := e.(*LogicE); ok && l.Op == "and" {
		var out []Expr
		for _, a := range l.Args {
			out = append(out, flattenAnd(a)...)
		}
		return out
	}
	return []Expr{e}
}

func runSelect(ctx *qctx, sc *SelectCore, parent *scope) (*Result, error) {
	// Materialize sources and fold joins left to right.
	var sources []*source
	for i := range sc.From {
		s, err := ctx.materialize(&sc.From[i], parent)
		if err != nil {
			return nil, err
		}
		sources = append(sources, s)
	}

	binds := make([]*bind, len(sources))
	for i, s := range sources {
		binds[i] = &bind{alias: s.alias, cols: s.cols}
	}
	rowScope := &scope{parent: parent, binds: binds}
	renv := &env{ctx: ctx, sc: rowScope}

	// A joined row holds one row slice per source; padded (outer-join) rows
	// are allocated as all-null slices so resolution never sees nil.
	type jrow = [][]xdm.Value
	var current []jrow
	if len(sources) == 0 {
		current = []jrow{{}}
	} else {
		for _, r := range sources[0].rows {
			current = append(current, jrow{r})
		}
	}

	setRow := func(jr jrow) {
		for i := range jr {
			binds[i].row = jr[i]
		}
		for i := len(jr); i < len(binds); i++ {
			binds[i].row = make([]xdm.Value, len(sources[i].cols))
		}
	}

	for k := 1; k < len(sources); k++ {
		fi := &sc.From[k]
		right := sources[k]
		leftAliases := map[string]bool{}
		for i := 0; i < k; i++ {
			if sources[i].alias != "" {
				leftAliases[sources[i].alias] = true
			}
		}
		st := planJoin(fi.On, leftAliases, right.alias, right.cols)

		evalResidual := func() (bool, error) {
			for _, e := range st.residual {
				v, err := evalExpr(renv, e)
				if err != nil {
					return false, err
				}
				if v.IsNull() || !v.EffectiveBool() {
					return false, nil
				}
			}
			return true, nil
		}

		var next []jrow
		if len(st.equi) > 0 {
			// Hash join; NULL join keys never match (evaluator semantics).
			rightIdx := make([]int, len(st.equi))
			for i, ep := range st.equi {
				rightIdx[i] = colIndex(right.cols, ep.rightCol)
			}
			buckets := make(map[string][]int, len(right.rows))
			for ri, rr := range right.rows {
				keys := make([]xdm.Value, len(rightIdx))
				null := false
				for i, ci := range rightIdx {
					if rr[ci].IsNull() {
						null = true
						break
					}
					keys[i] = rr[ci]
				}
				if null {
					continue
				}
				k := xdm.TupleKey(keys)
				buckets[k] = append(buckets[k], ri)
			}
			for _, jr := range current {
				setRow(jr)
				probe := make([]xdm.Value, len(st.equi))
				null := false
				for i, ep := range st.equi {
					v, err := rowScope.resolve(ep.left.Qual, ep.left.Name)
					if err != nil {
						return nil, err
					}
					if v.IsNull() {
						null = true
						break
					}
					probe[i] = v
				}
				matched := false
				if !null {
					for _, ri := range buckets[xdm.TupleKey(probe)] {
						njr := append(append(jrow{}, jr...), right.rows[ri])
						setRow(njr)
						ok, err := evalResidual()
						if err != nil {
							return nil, err
						}
						if ok {
							matched = true
							next = append(next, njr)
						}
					}
				}
				if !matched && fi.Join == "left" {
					pad := make([]xdm.Value, len(right.cols))
					next = append(next, append(append(jrow{}, jr...), pad))
				}
			}
		} else {
			conds := flattenAnd(fi.On)
			for _, jr := range current {
				matched := false
				for _, rr := range right.rows {
					njr := append(append(jrow{}, jr...), rr)
					setRow(njr)
					ok := true
					for _, e := range conds {
						v, err := evalExpr(renv, e)
						if err != nil {
							return nil, err
						}
						if v.IsNull() || !v.EffectiveBool() {
							ok = false
							break
						}
					}
					if ok {
						matched = true
						next = append(next, njr)
					}
				}
				if !matched && fi.Join == "left" {
					pad := make([]xdm.Value, len(right.cols))
					next = append(next, append(append(jrow{}, jr...), pad))
				}
			}
		}
		current = next
	}

	// WHERE filter.
	if sc.Where != nil {
		var kept []jrow
		for _, jr := range current {
			setRow(jr)
			v, err := evalExpr(renv, sc.Where)
			if err != nil {
				return nil, err
			}
			if !v.IsNull() && v.EffectiveBool() {
				kept = append(kept, jr)
			}
		}
		current = kept
	}

	// Window functions (ROW_NUMBER), numbered in arrival order per partition.
	var windows []*WindowE
	for _, it := range sc.Items {
		windows = append(windows, collectWindows(it.E)...)
	}
	winVals := map[*WindowE][]xdm.Value{}
	for _, w := range windows {
		vals := make([]xdm.Value, len(current))
		counts := map[string]int64{}
		for i, jr := range current {
			setRow(jr)
			keys := make([]xdm.Value, len(w.PartitionBy))
			for j, e := range w.PartitionBy {
				v, err := evalExpr(renv, e)
				if err != nil {
					return nil, err
				}
				keys[j] = v
			}
			k := xdm.TupleKey(keys)
			counts[k]++
			vals[i] = xdm.Int(counts[k])
		}
		winVals[w] = vals
	}

	// Output column names.
	outCols := outputCols(sc, sources)

	hasAgg := len(sc.GroupBy) > 0
	if !hasAgg {
		for _, it := range sc.Items {
			if len(collectAggs(it.E)) > 0 {
				hasAgg = true
				break
			}
		}
	}

	var rows [][]xdm.Value
	if hasAgg {
		var err error
		rows, err = runAggregate(ctx, sc, sources, binds, rowScope, current, setRowFn(setRow))
		if err != nil {
			return nil, err
		}
	} else {
		for i, jr := range current {
			setRow(jr)
			env := &env{ctx: ctx, sc: rowScope, win: map[*WindowE]xdm.Value{}}
			for w, vals := range winVals {
				env.win[w] = vals[i]
			}
			row, err := evalItems(env, sc.Items, binds)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}

	// ORDER BY on output columns.
	if len(sc.OrderBy) > 0 {
		type ospec struct {
			idx  int
			desc bool
		}
		specs := make([]ospec, len(sc.OrderBy))
		for i, o := range sc.OrderBy {
			c, ok := o.E.(*ColE)
			if !ok || c.Qual != "" {
				return nil, fmt.Errorf("sqlshim: ORDER BY supports output column names only")
			}
			idx := colIndex(outCols, c.Name)
			if idx < 0 {
				return nil, fmt.Errorf("sqlshim: ORDER BY column %s not in output", c.Name)
			}
			specs[i] = ospec{idx: idx, desc: o.Desc}
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for _, s := range specs {
				r := xdm.Compare(rows[a][s.idx], rows[b][s.idx])
				if s.desc {
					r = -r
				}
				if r != 0 {
					return r < 0
				}
			}
			return false
		})
	}

	return &Result{Cols: outCols, Rows: rows}, nil
}

type setRowFn func(jr [][]xdm.Value)

// outputCols derives output column names from the select items.
func outputCols(sc *SelectCore, sources []*source) []string {
	var cols []string
	for i, it := range sc.Items {
		if it.Star {
			for _, s := range sources {
				cols = append(cols, s.cols...)
			}
			continue
		}
		switch {
		case it.As != "":
			cols = append(cols, it.As)
		default:
			if c, ok := it.E.(*ColE); ok {
				cols = append(cols, c.Name)
			} else {
				cols = append(cols, fmt.Sprintf("c%d", i+1))
			}
		}
	}
	return cols
}

// evalItems evaluates the select list for the current row binding.
func evalItems(env *env, items []SelectItem, binds []*bind) ([]xdm.Value, error) {
	var row []xdm.Value
	for _, it := range items {
		if it.Star {
			for _, b := range binds {
				row = append(row, b.row...)
			}
			continue
		}
		v, err := evalExpr(env, it.E)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

// runAggregate groups the joined rows and evaluates aggregate select items,
// mirroring xqgm.evalGroupBy: groups ordered by key string; a global
// aggregate over empty input yields one row, a grouped one yields none.
func runAggregate(ctx *qctx, sc *SelectCore, sources []*source, binds []*bind, rowScope *scope, current [][][]xdm.Value, setRow setRowFn) ([][]xdm.Value, error) {
	renv := &env{ctx: ctx, sc: rowScope}
	type group struct {
		rows [][][]xdm.Value
	}
	groups := map[string]*group{}
	var order []string
	for _, jr := range current {
		setRow(jr)
		keys := make([]xdm.Value, len(sc.GroupBy))
		for i, e := range sc.GroupBy {
			v, err := evalExpr(renv, e)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		k := xdm.TupleKey(keys)
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, jr)
	}
	if len(sc.GroupBy) == 0 && len(order) == 0 {
		k := xdm.TupleKey(nil)
		groups[k] = &group{}
		order = append(order, k)
	}
	sort.Strings(order)

	var aggs []*CallE
	for _, it := range sc.Items {
		aggs = append(aggs, collectAggs(it.E)...)
	}

	var out [][]xdm.Value
	for _, k := range order {
		g := groups[k]
		aggVals := map[*CallE]xdm.Value{}
		for _, a := range aggs {
			v, err := evalAggCall(ctx, rowScope, setRow, a, g.rows)
			if err != nil {
				return nil, err
			}
			aggVals[a] = v
		}
		// Non-aggregate parts of the select list (group columns) are
		// constant within a group; bind the first row, or an all-null row
		// for the empty global group.
		if len(g.rows) > 0 {
			setRow(g.rows[0])
		} else {
			setRow(nil)
		}
		env := &env{ctx: ctx, sc: rowScope, agg: aggVals}
		row, err := evalItems(env, sc.Items, binds)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

func collectWindows(e Expr) []*WindowE {
	var out []*WindowE
	walkExpr(e, func(x Expr) bool {
		if w, ok := x.(*WindowE); ok {
			out = append(out, w)
		}
		return true
	})
	return out
}

func collectAggs(e Expr) []*CallE {
	var out []*CallE
	walkExpr(e, func(x Expr) bool {
		if c, ok := x.(*CallE); ok && isAggName(c.Name) {
			out = append(out, c)
			return false // don't descend into aggregate args
		}
		return true
	})
	return out
}

func isAggName(name string) bool {
	switch name {
	case "count", "sum", "min", "max", "avg", "aggxmlfrag":
		return true
	}
	return false
}

// walkExpr visits e and (when fn returns true) its children. Subqueries are
// not descended into: their aggregates/windows belong to the inner select.
func walkExpr(e Expr, fn func(Expr) bool) {
	if e == nil {
		return
	}
	if !fn(e) {
		return
	}
	switch x := e.(type) {
	case *UnaryE:
		walkExpr(x.E, fn)
	case *BinaryE:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *LogicE:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *IsNullE:
		walkExpr(x.E, fn)
	case *CallE:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
		for _, o := range x.OrderBy {
			walkExpr(o.E, fn)
		}
	case *WindowE:
		for _, a := range x.PartitionBy {
			walkExpr(a, fn)
		}
	}
}
