package sqlshim

import (
	"fmt"
	"sort"
	"strings"

	"quark/internal/xdm"
)

// callScalar dispatches the scalar UDFs emitted by core.RenderSQL. Each
// mirrors the corresponding internal/xqgm expression exactly.
func callScalar(name string, vals []xdm.Value) (xdm.Value, error) {
	switch name {
	case "xml_data":
		return xdm.Atomize(vals[0]), nil
	case "xml_string":
		return xdm.Str(vals[0].AsString()), nil
	case "seq_count":
		return xdm.Int(int64(vals[0].SeqLen())), nil
	case "seq_empty":
		return xdm.Bool(vals[0].SeqLen() == 0), nil
	case "seq_exists":
		return xdm.Bool(vals[0].SeqLen() > 0), nil
	case "concat":
		var sb strings.Builder
		for _, v := range vals {
			sb.WriteString(v.AsString())
		}
		return xdm.Str(sb.String()), nil
	case "abs":
		v := xdm.Atomize(vals[0])
		if v.IsNull() {
			return xdm.Null, nil
		}
		if v.Kind() == xdm.KindInt {
			i := v.AsInt()
			if i < 0 {
				i = -i
			}
			return xdm.Int(i), nil
		}
		f := v.AsFloat()
		if f < 0 {
			f = -f
		}
		return xdm.Float(f), nil
	case "coalesce":
		for _, v := range vals {
			if !v.IsNull() {
				return v, nil
			}
		}
		return xdm.Null, nil
	case "deep_equal":
		return xdm.Bool(xdm.Equal(vals[0], vals[1])), nil
	case "xml_concat":
		// Mirrors the compiler's sequence constructor: no flattening here;
		// consumers splice via AsSeq.
		return xdm.Seq(append([]xdm.Value{}, vals...)), nil
	case "xml_parse":
		n, err := xdm.Parse(vals[0].AsString())
		if err != nil {
			return xdm.Null, fmt.Errorf("sqlshim: xml_parse: %v", err)
		}
		return xdm.NodeVal(n), nil
	case "xml_attr":
		return xdm.NodeVal(xdm.Attr(vals[0].AsString(), vals[1].Lexical())), nil
	case "xml_element":
		n := xdm.Elem(vals[0].AsString())
		for _, v := range vals[1:] {
			appendContentShim(n, v)
		}
		return xdm.NodeVal(n), nil
	default:
		return xdm.Null, fmt.Errorf("sqlshim: unknown function %s", name)
	}
}

// appendContentShim mirrors xqgm's element-content assembly: nulls vanish,
// nodes are deep-copied (attribute nodes route to Attrs via AppendChild),
// sequences splice recursively, scalars become text nodes of their lexical
// form.
func appendContentShim(n *xdm.Node, v xdm.Value) {
	switch v.Kind() {
	case xdm.KindNull:
	case xdm.KindNode:
		n.AppendChild(v.AsNode().Copy())
	case xdm.KindSeq:
		for _, e := range v.AsSeq() {
			appendContentShim(n, e)
		}
	default:
		n.AppendChild(xdm.TextNd(v.Lexical()))
	}
}

// evalPathStep implements path_step(input, axis, name[, predicate]). The
// predicate sees the step item as the sole binding of an inner scope named
// ITEM, with the enclosing scope still visible for constants-table columns.
func evalPathStep(en *env, x *CallE) (xdm.Value, error) {
	if len(x.Args) < 3 || len(x.Args) > 4 {
		return xdm.Null, fmt.Errorf("sqlshim: path_step takes 3 or 4 arguments")
	}
	in, err := evalExpr(en, x.Args[0])
	if err != nil {
		return xdm.Null, err
	}
	axisV, err := evalExpr(en, x.Args[1])
	if err != nil {
		return xdm.Null, err
	}
	nameV, err := evalExpr(en, x.Args[2])
	if err != nil {
		return xdm.Null, err
	}
	axis, name := axisV.AsString(), nameV.AsString()
	var out []xdm.Value
	for _, item := range in.AsSeq() {
		n := item.AsNode()
		if n == nil {
			continue
		}
		switch axis {
		case "child":
			for _, c := range n.ChildElements(name) {
				out = append(out, xdm.NodeVal(c))
			}
		case "attribute":
			if name == "*" {
				for _, a := range n.Attrs {
					out = append(out, xdm.ParseTyped(a.Text))
				}
			} else if av, ok := n.Attribute(name); ok {
				out = append(out, xdm.ParseTyped(av))
			}
		case "descendant":
			for _, d := range n.Descendants(name, nil) {
				out = append(out, xdm.NodeVal(d))
			}
		default:
			return xdm.Null, fmt.Errorf("sqlshim: unsupported axis %q", axis)
		}
	}
	if len(x.Args) == 4 {
		kept := out[:0]
		for _, item := range out {
			isc := &scope{parent: en.sc, binds: []*bind{{cols: []string{"item"}, row: []xdm.Value{item}}}}
			pen := &env{ctx: en.ctx, sc: isc, win: en.win, agg: en.agg}
			pv, err := evalExpr(pen, x.Args[3])
			if err != nil {
				return xdm.Null, err
			}
			if !pv.IsNull() && pv.EffectiveBool() {
				kept = append(kept, item)
			}
		}
		out = kept
	}
	switch len(out) {
	case 0:
		return xdm.Null, nil
	case 1:
		return out[0], nil
	default:
		return xdm.Seq(out), nil
	}
}

// evalAggCall computes one aggregate over a group's joined rows, mirroring
// xqgm.evalAgg: COUNT(expr) sums sequence lengths of non-null values,
// SUM stays integral when every input is integral, AVG is always float,
// AGGXMLFRAG orders rows by its internal ORDER BY then splices sequences.
func evalAggCall(ctx *qctx, rowScope *scope, setRow setRowFn, a *CallE, rows [][][]xdm.Value) (xdm.Value, error) {
	en := &env{ctx: ctx, sc: rowScope}
	argVal := func(jr [][]xdm.Value) (xdm.Value, error) {
		setRow(jr)
		return evalExpr(en, a.Args[0])
	}
	switch a.Name {
	case "count":
		if a.Star {
			return xdm.Int(int64(len(rows))), nil
		}
		n := int64(0)
		for _, jr := range rows {
			v, err := argVal(jr)
			if err != nil {
				return xdm.Null, err
			}
			if !v.IsNull() {
				n += int64(v.SeqLen())
			}
		}
		return xdm.Int(n), nil
	case "sum", "avg":
		sum := 0.0
		allInt := true
		isum := int64(0)
		n := 0
		for _, jr := range rows {
			v, err := argVal(jr)
			if err != nil {
				return xdm.Null, err
			}
			v = xdm.Atomize(v)
			if v.IsNull() {
				continue
			}
			if v.Kind() == xdm.KindInt {
				isum += v.AsInt()
			} else {
				allInt = false
			}
			sum += v.AsFloat()
			n++
		}
		if n == 0 {
			return xdm.Null, nil
		}
		if a.Name == "avg" {
			return xdm.Float(sum / float64(n)), nil
		}
		if allInt {
			return xdm.Int(isum), nil
		}
		return xdm.Float(sum), nil
	case "min", "max":
		var best xdm.Value
		has := false
		for _, jr := range rows {
			v, err := argVal(jr)
			if err != nil {
				return xdm.Null, err
			}
			v = xdm.Atomize(v)
			if v.IsNull() {
				continue
			}
			if !has {
				best, has = v, true
				continue
			}
			c := xdm.Compare(v, best)
			if (a.Name == "min" && c < 0) || (a.Name == "max" && c > 0) {
				best = v
			}
		}
		if !has {
			return xdm.Null, nil
		}
		return best, nil
	case "aggxmlfrag":
		ordered := rows
		if len(a.OrderBy) > 0 {
			type krow struct {
				jr   [][]xdm.Value
				keys []xdm.Value
			}
			krows := make([]krow, len(rows))
			for i, jr := range rows {
				setRow(jr)
				keys := make([]xdm.Value, len(a.OrderBy))
				for j, o := range a.OrderBy {
					v, err := evalExpr(en, o.E)
					if err != nil {
						return xdm.Null, err
					}
					keys[j] = v
				}
				krows[i] = krow{jr: jr, keys: keys}
			}
			sort.SliceStable(krows, func(x, y int) bool {
				for j := range a.OrderBy {
					r := xdm.Compare(krows[x].keys[j], krows[y].keys[j])
					if a.OrderBy[j].Desc {
						r = -r
					}
					if r != 0 {
						return r < 0
					}
				}
				return false
			})
			ordered = make([][][]xdm.Value, len(krows))
			for i, kr := range krows {
				ordered[i] = kr.jr
			}
		}
		var items []xdm.Value
		for _, jr := range ordered {
			v, err := argVal(jr)
			if err != nil {
				return xdm.Null, err
			}
			if v.IsNull() {
				continue
			}
			items = append(items, v.AsSeq()...)
		}
		return xdm.Seq(items), nil
	default:
		return xdm.Null, fmt.Errorf("sqlshim: unknown aggregate %s", a.Name)
	}
}
