package sqlshim

import (
	"fmt"
	"strings"
)

// explainQuery renders a deterministic EXPLAIN QUERY PLAN for q. The plan is
// derived purely from the statement text and table schemas — never from row
// counts — so baselines stay stable across data sets (the regresql-style
// conformance gate diffs these against committed files).
func (db *DB) explainQuery(q *Query) ([]string, error) {
	ex := &explainer{db: db, cteCols: map[string][]string{}}
	var lines []string
	for _, c := range q.With {
		lines = append(lines, "CTE "+c.Name)
		lines = append(lines, ex.compound(c.Body, 1)...)
		cols := c.Cols
		if len(cols) == 0 {
			cols = ex.operandCols(c.Body)
		}
		ex.cteCols[strings.ToLower(c.Name)] = lowerAll(cols)
	}
	lines = append(lines, "QUERY")
	lines = append(lines, ex.compound(q.Body, 1)...)
	return lines, nil
}

type explainer struct {
	db      *DB
	cteCols map[string][]string
}

func indentLine(depth int, s string) string {
	return strings.Repeat("  ", depth) + s
}

func (ex *explainer) compound(c *Compound, depth int) []string {
	lines := ex.operand(c.First, depth)
	for _, t := range c.Rest {
		lines = append(lines, indentLine(depth, strings.ToUpper(t.Op)))
		lines = append(lines, ex.operand(t.Operand, depth+1)...)
	}
	return lines
}

func (ex *explainer) operand(o Operand, depth int) []string {
	switch x := o.(type) {
	case *SelectCore:
		return ex.selectCore(x, depth)
	case *ValuesCore:
		return []string{indentLine(depth, fmt.Sprintf("VALUES (%d rows)", len(x.Rows)))}
	case *Compound:
		return ex.compound(x, depth)
	}
	return nil
}

func (ex *explainer) selectCore(sc *SelectCore, depth int) []string {
	var lines []string
	leftAliases := map[string]bool{}
	for i := range sc.From {
		fi := &sc.From[i]
		name := fi.Table
		if fi.Sub != nil {
			name = "(subquery)"
		}
		alias := strings.ToLower(fi.Alias)
		if alias == "" {
			alias = strings.ToLower(fi.Table)
		}
		label := name
		if fi.Alias != "" {
			label = name + " AS " + fi.Alias
		}
		switch {
		case i == 0:
			lines = append(lines, indentLine(depth, "SCAN "+label))
		default:
			st := planJoin(fi.On, leftAliases, alias, ex.fromCols(fi))
			var how string
			switch {
			case len(st.equi) > 0:
				var keys []string
				for _, ep := range st.equi {
					keys = append(keys, fmt.Sprintf("%s.%s = %s.%s", ep.left.Qual, ep.left.Name, alias, ep.rightCol))
				}
				how = "HASH JOIN " + label + " (" + strings.Join(keys, ", ") + ")"
			case fi.On == nil:
				how = "CROSS JOIN " + label
			default:
				how = "NESTED LOOP " + label
			}
			if fi.Join == "left" {
				how = "LEFT " + how
			}
			lines = append(lines, indentLine(depth, how))
		}
		if fi.Sub != nil {
			lines = append(lines, ex.compound(fi.Sub, depth+1)...)
		}
		if alias != "" {
			leftAliases[alias] = true
		}
	}
	if sc.Where != nil {
		n := len(flattenAnd(sc.Where))
		lines = append(lines, indentLine(depth, fmt.Sprintf("FILTER (%d conditions)", n)))
	}
	nwin := 0
	hasAgg := len(sc.GroupBy) > 0
	for _, it := range sc.Items {
		nwin += len(collectWindows(it.E))
		if !hasAgg && len(collectAggs(it.E)) > 0 {
			hasAgg = true
		}
	}
	if nwin > 0 {
		lines = append(lines, indentLine(depth, "WINDOW ROW_NUMBER"))
	}
	if hasAgg {
		if len(sc.GroupBy) > 0 {
			lines = append(lines, indentLine(depth, fmt.Sprintf("AGGREGATE GROUP BY (%d keys)", len(sc.GroupBy))))
		} else {
			lines = append(lines, indentLine(depth, "AGGREGATE (global)"))
		}
	}
	if len(sc.OrderBy) > 0 {
		lines = append(lines, indentLine(depth, fmt.Sprintf("ORDER BY (%d keys)", len(sc.OrderBy))))
	}
	return lines
}

// fromCols resolves a FROM item's column names statically (schema or CTE
// shape only) for join-key classification during EXPLAIN.
func (ex *explainer) fromCols(fi *FromItem) []string {
	if fi.Sub != nil {
		return ex.operandCols(fi.Sub)
	}
	key := strings.ToLower(fi.Table)
	if cols, ok := ex.cteCols[key]; ok {
		return cols
	}
	if t, ok := ex.db.tables[key]; ok {
		return lowerAll(t.Cols)
	}
	return nil
}

func (ex *explainer) operandCols(o Operand) []string {
	switch x := o.(type) {
	case *SelectCore:
		var cols []string
		for i, it := range x.Items {
			switch {
			case it.Star:
				for j := range x.From {
					cols = append(cols, ex.fromCols(&x.From[j])...)
				}
			case it.As != "":
				cols = append(cols, it.As)
			default:
				if c, ok := it.E.(*ColE); ok {
					cols = append(cols, c.Name)
				} else {
					cols = append(cols, fmt.Sprintf("c%d", i+1))
				}
			}
		}
		return cols
	case *ValuesCore:
		if len(x.Rows) == 0 {
			return nil
		}
		cols := make([]string, len(x.Rows[0]))
		for i := range cols {
			cols[i] = fmt.Sprintf("c%d", i+1)
		}
		return cols
	case *Compound:
		return ex.operandCols(x.First)
	}
	return nil
}
