package sqlshim

import "quark/internal/xdm"

// Stmt is any parsed statement.
type Stmt interface{ isStmt() }

// CreateTable is CREATE TABLE name (col type ..., PRIMARY KEY (...)).
type CreateTable struct {
	Name string
	Cols []ColDef
	PK   []string
}

// ColDef is one column definition.
type ColDef struct {
	Name string
	Type string
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// Insert is INSERT INTO name [(cols)] VALUES (...), (...).
type Insert struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// Delete is DELETE FROM name [WHERE expr].
type Delete struct {
	Table string
	Where Expr
}

// ExplainStmt is EXPLAIN QUERY PLAN <query>.
type ExplainStmt struct {
	Query *Query
}

// Query is [WITH ctes] compound.
type Query struct {
	With []CTEDef
	Body *Compound
}

// CTEDef is name(cols) AS (body).
type CTEDef struct {
	Name string
	Cols []string
	Body *Compound
}

// Compound is a chain of set operations over select cores.
type Compound struct {
	First Operand
	Rest  []CompoundTail
}

// CompoundTail is one trailing set operation.
type CompoundTail struct {
	Op      string // "union", "union all", "except", "intersect"
	Operand Operand
}

// Operand is one compound operand: *SelectCore, *ValuesCore, or a
// parenthesized *Compound.
type Operand interface{ isOperand() }

func (*SelectCore) isOperand() {}
func (*ValuesCore) isOperand() {}
func (*Compound) isOperand()   {}

func (*CreateTable) isStmt() {}
func (*DropTable) isStmt()   {}
func (*Insert) isStmt()      {}
func (*Delete) isStmt()      {}
func (*ExplainStmt) isStmt() {}
func (*Query) isStmt()       {}

// ValuesCore is VALUES (...), (...).
type ValuesCore struct {
	Rows [][]Expr
}

// SelectCore is one SELECT ... FROM ... WHERE ... GROUP BY ... ORDER BY.
type SelectCore struct {
	Items   []SelectItem
	From    []FromItem
	Where   Expr
	GroupBy []Expr
	OrderBy []OrderSpec
}

// SelectItem is one output expression (or *).
type SelectItem struct {
	Star bool
	E    Expr
	As   string
}

// FromItem is one FROM source; Join is "" for the first source.
type FromItem struct {
	Join  string // "", "inner", "left", "cross"
	Table string
	Sub   *Compound
	Alias string
	On    Expr
}

// OrderSpec is one ORDER BY term.
type OrderSpec struct {
	E    Expr
	Desc bool
}

// Expr is any expression node.
type Expr interface{ isExpr() }

// LitE is a literal value.
type LitE struct{ V xdm.Value }

// ParamE is a ? placeholder (ordinal).
type ParamE struct{ Idx int }

// ColE is a column reference, optionally qualified.
type ColE struct{ Qual, Name string }

// UnaryE is unary minus or NOT.
type UnaryE struct {
	Op string // "-", "not"
	E  Expr
}

// BinaryE is a comparison or arithmetic operator.
type BinaryE struct {
	Op   string // = <> < <= > >= + - * / %
	L, R Expr
}

// LogicE is AND/OR with three-valued logic.
type LogicE struct {
	Op   string // "and", "or"
	Args []Expr
}

// IsNullE is IS [NOT] NULL.
type IsNullE struct {
	E   Expr
	Neg bool
}

// CallE is a function call; aggregates may carry an internal ORDER BY.
type CallE struct {
	Name    string // lowercased
	Star    bool   // COUNT(*)
	Args    []Expr
	OrderBy []OrderSpec
}

// ExistsE is EXISTS (subquery).
type ExistsE struct{ Q *Compound }

// SubqueryE is a scalar subquery.
type SubqueryE struct{ Q *Compound }

// WindowE is ROW_NUMBER() OVER (PARTITION BY ...).
type WindowE struct {
	Fn          string // "row_number"
	PartitionBy []Expr
}

func (*LitE) isExpr()      {}
func (*ParamE) isExpr()    {}
func (*ColE) isExpr()      {}
func (*UnaryE) isExpr()    {}
func (*BinaryE) isExpr()   {}
func (*LogicE) isExpr()    {}
func (*IsNullE) isExpr()   {}
func (*CallE) isExpr()     {}
func (*ExistsE) isExpr()   {}
func (*SubqueryE) isExpr() {}
func (*WindowE) isExpr()   {}
