// Package sqlshim is a small, dependency-free SQL engine over xdm values.
// It executes the dialect produced by core.RenderSQL — WITH pipelines of
// SELECT/JOIN/GROUP BY/UNION/EXCEPT cores plus the XML UDFs (xml_element,
// path_step, ...) — with exactly the evaluator's value semantics, and it
// registers a database/sql driver ("sqlshim") so internal/relsql can present
// it behind the standard interface as the real-database backend.
//
// The engine is deliberately an interpreter: plans are tiny (per-commit
// transition tables), and byte-identical agreement with internal/xqgm's
// evaluator matters more than throughput. Where SQL leaves room
// (three-valued logic, join-key NULLs, aggregate order), it mirrors
// internal/xqgm precisely.
package sqlshim

import (
	"fmt"
	"strconv"
	"strings"

	"quark/internal/xdm"
)

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkQIdent
	tkString
	tkInt
	tkFloat
	tkPunct
	tkParam
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lex tokenizes SQL text. Line comments (-- ...) are skipped; strings use
// single quotes with ” escaping; quoted identifiers use double quotes.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sqlshim: unterminated string at %d", start)
				}
				if src[i] == '\'' {
					if i+1 < n && src[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			toks = append(toks, token{tkString, sb.String(), start})
		case c == '"':
			start := i
			i++
			j := i
			for j < n && src[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlshim: unterminated quoted identifier at %d", start)
			}
			toks = append(toks, token{tkQIdent, src[i:j], start})
			i = j + 1
		case c >= '0' && c <= '9':
			start := i
			isFloat := false
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			if i < n && src[i] == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9' {
				isFloat = true
				i++
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < n && src[j] >= '0' && src[j] <= '9' {
					isFloat = true
					i = j
					for i < n && src[i] >= '0' && src[i] <= '9' {
						i++
					}
				}
			}
			k := tkInt
			if isFloat {
				k = tkFloat
			}
			toks = append(toks, token{k, src[start:i], start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentChar(src[i]) {
				i++
			}
			toks = append(toks, token{tkIdent, src[start:i], start})
		case c == '?':
			toks = append(toks, token{tkParam, "?", i})
			i++
		case c == '<':
			if i+1 < n && (src[i+1] == '=' || src[i+1] == '>') {
				toks = append(toks, token{tkPunct, src[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tkPunct, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tkPunct, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tkPunct, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				toks = append(toks, token{tkPunct, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("sqlshim: unexpected '!' at %d", i)
			}
		case strings.IndexByte("(),.;*=+-/%", c) >= 0:
			toks = append(toks, token{tkPunct, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqlshim: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tkEOF, "", n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func litFromToken(t token) (xdm.Value, error) {
	switch t.kind {
	case tkString:
		return xdm.Str(t.text), nil
	case tkInt:
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return xdm.Null, fmt.Errorf("sqlshim: bad integer %q: %v", t.text, err)
		}
		return xdm.Int(i), nil
	case tkFloat:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return xdm.Null, fmt.Errorf("sqlshim: bad number %q: %v", t.text, err)
		}
		return xdm.Float(f), nil
	}
	return xdm.Null, fmt.Errorf("sqlshim: not a literal token %q", t.text)
}
