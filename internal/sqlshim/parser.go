package sqlshim

import (
	"fmt"
	"strings"

	"quark/internal/xdm"
)

func negLit(l *LitE) *LitE {
	if l.V.Kind() == xdm.KindInt {
		return &LitE{V: xdm.Int(-l.V.AsInt())}
	}
	return &LitE{V: xdm.Float(-l.V.AsFloat())}
}

type parser struct {
	toks   []token
	i      int
	params int
}

// parseStmt parses a single SQL statement (optionally ;-terminated).
func parseStmt(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlshim: trailing input at %q", p.peek().text)
	}
	return st, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tkEOF }

// isKw reports whether the current token is the given keyword.
func (p *parser) isKw(kw string) bool {
	t := p.peek()
	return t.kind == tkIdent && strings.EqualFold(t.text, kw)
}

// acceptKw consumes the keyword if present.
func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("sqlshim: expected %s, got %q", strings.ToUpper(kw), p.peek().text)
	}
	return nil
}

// accept consumes the punct token if present.
func (p *parser) accept(punct string) bool {
	t := p.peek()
	if t.kind == tkPunct && t.text == punct {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(punct string) error {
	if !p.accept(punct) {
		return fmt.Errorf("sqlshim: expected %q, got %q", punct, p.peek().text)
	}
	return nil
}

// ident consumes an identifier (bare or quoted).
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind == tkIdent || t.kind == tkQIdent {
		p.i++
		return t.text, nil
	}
	return "", fmt.Errorf("sqlshim: expected identifier, got %q", t.text)
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.isKw("create"):
		return p.createTable()
	case p.isKw("drop"):
		return p.dropTable()
	case p.isKw("insert"):
		return p.insert()
	case p.isKw("delete"):
		return p.delete()
	case p.isKw("explain"):
		p.i++
		if err := p.expectKw("query"); err != nil {
			return nil, err
		}
		if err := p.expectKw("plan"); err != nil {
			return nil, err
		}
		q, err := p.query()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: q}, nil
	default:
		return p.query()
	}
}

func (p *parser) createTable() (Stmt, error) {
	p.i++ // CREATE
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.isKw("primary") {
			p.i++
			if err := p.expectKw("key"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				ct.PK = append(ct.PK, c)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		} else {
			cn, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ := ""
			for p.peek().kind == tkIdent && !p.isKw("primary") {
				// type name tokens (e.g. DOUBLE PRECISION) until , or )
				if typ != "" {
					typ += " "
				}
				typ += p.next().text
			}
			ct.Cols = append(ct.Cols, ColDef{Name: cn, Type: typ})
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) dropTable() (Stmt, error) {
	p.i++ // DROP
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	d := &DropTable{}
	if p.acceptKw("if") {
		if err := p.expectKw("exists"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d.Name = name
	return d, nil
}

func (p *parser) insert() (Stmt, error) {
	p.i++ // INSERT
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.accept("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Cols = append(ins.Cols, c)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("values"); err != nil {
		return nil, err
	}
	rows, err := p.valuesRows()
	if err != nil {
		return nil, err
	}
	ins.Rows = rows
	return ins, nil
}

func (p *parser) delete() (Stmt, error) {
	p.i++ // DELETE
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: name}
	if p.acceptKw("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

func (p *parser) valuesRows() ([][]Expr, error) {
	var rows [][]Expr
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if !p.accept(",") {
			break
		}
	}
	return rows, nil
}

func (p *parser) query() (*Query, error) {
	q := &Query{}
	if p.acceptKw("with") {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			cte := CTEDef{Name: name}
			if p.accept("(") {
				for {
					c, err := p.ident()
					if err != nil {
						return nil, err
					}
					cte.Cols = append(cte.Cols, c)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			if err := p.expectKw("as"); err != nil {
				return nil, err
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			body, err := p.compound()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			cte.Body = body
			q.With = append(q.With, cte)
			if !p.accept(",") {
				break
			}
		}
	}
	body, err := p.compound()
	if err != nil {
		return nil, err
	}
	q.Body = body
	return q, nil
}

func (p *parser) compound() (*Compound, error) {
	first, err := p.operand()
	if err != nil {
		return nil, err
	}
	c := &Compound{First: first}
	for {
		var op string
		switch {
		case p.isKw("union"):
			p.i++
			op = "union"
			if p.acceptKw("all") {
				op = "union all"
			}
		case p.isKw("except"):
			p.i++
			op = "except"
		case p.isKw("intersect"):
			p.i++
			op = "intersect"
		default:
			return c, nil
		}
		o, err := p.operand()
		if err != nil {
			return nil, err
		}
		c.Rest = append(c.Rest, CompoundTail{Op: op, Operand: o})
	}
}

func (p *parser) operand() (Operand, error) {
	switch {
	case p.isKw("select"):
		return p.selectCore()
	case p.isKw("values"):
		p.i++
		rows, err := p.valuesRows()
		if err != nil {
			return nil, err
		}
		return &ValuesCore{Rows: rows}, nil
	case p.peek().kind == tkPunct && p.peek().text == "(":
		p.i++
		c, err := p.compound()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return c, nil
	default:
		return nil, fmt.Errorf("sqlshim: expected SELECT, VALUES or (, got %q", p.peek().text)
	}
}

func (p *parser) selectCore() (*SelectCore, error) {
	p.i++ // SELECT
	sc := &SelectCore{}
	for {
		if p.accept("*") {
			sc.Items = append(sc.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{E: e}
			if p.acceptKw("as") {
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.As = a
			}
			sc.Items = append(sc.Items, item)
		}
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("from") {
		first := FromItem{}
		if err := p.fromSource(&first); err != nil {
			return nil, err
		}
		sc.From = append(sc.From, first)
		for {
			join := ""
			switch {
			case p.isKw("join"):
				p.i++
				join = "inner"
			case p.isKw("inner"):
				p.i++
				if err := p.expectKw("join"); err != nil {
					return nil, err
				}
				join = "inner"
			case p.isKw("left"):
				p.i++
				p.acceptKw("outer")
				if err := p.expectKw("join"); err != nil {
					return nil, err
				}
				join = "left"
			case p.isKw("cross"):
				p.i++
				if err := p.expectKw("join"); err != nil {
					return nil, err
				}
				join = "cross"
			case p.peek().kind == tkPunct && p.peek().text == ",":
				p.i++
				join = "cross"
			default:
				join = ""
			}
			if join == "" {
				break
			}
			fi := FromItem{Join: join}
			if err := p.fromSource(&fi); err != nil {
				return nil, err
			}
			if p.acceptKw("on") {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				fi.On = e
			}
			sc.From = append(sc.From, fi)
		}
	}
	if p.acceptKw("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sc.Where = e
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sc.GroupBy = append(sc.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		specs, err := p.orderSpecs()
		if err != nil {
			return nil, err
		}
		sc.OrderBy = specs
	}
	return sc, nil
}

func (p *parser) orderSpecs() ([]OrderSpec, error) {
	var specs []OrderSpec
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		spec := OrderSpec{E: e}
		if p.acceptKw("desc") {
			spec.Desc = true
		} else {
			p.acceptKw("asc")
		}
		specs = append(specs, spec)
		if !p.accept(",") {
			break
		}
	}
	return specs, nil
}

func (p *parser) fromSource(fi *FromItem) error {
	if p.accept("(") {
		c, err := p.compound()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		fi.Sub = c
	} else {
		name, err := p.ident()
		if err != nil {
			return err
		}
		fi.Table = name
	}
	if p.acceptKw("as") {
		a, err := p.ident()
		if err != nil {
			return err
		}
		fi.Alias = a
	} else if t := p.peek(); (t.kind == tkIdent || t.kind == tkQIdent) && !fromClauseKw(t.text) {
		fi.Alias = t.text
		p.i++
	}
	return nil
}

// fromClauseKw lists keywords that terminate a FROM source (so a bare
// identifier after a table name is only taken as an alias when it is not
// one of these).
func fromClauseKw(s string) bool {
	switch strings.ToLower(s) {
	case "join", "inner", "left", "cross", "on", "where", "group", "order",
		"union", "except", "intersect", "as", "outer", "having", "limit":
		return true
	}
	return false
}

// --- expressions ---

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	var args []Expr
	for p.isKw("or") {
		p.i++
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		if args == nil {
			args = []Expr{l}
		}
		args = append(args, r)
	}
	if args != nil {
		return &LogicE{Op: "or", Args: args}, nil
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	var args []Expr
	for p.isKw("and") {
		p.i++
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		if args == nil {
			args = []Expr{l}
		}
		args = append(args, r)
	}
	if args != nil {
		return &LogicE{Op: "and", Args: args}, nil
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.isKw("not") && !p.nextIsExists() {
		p.i++
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryE{Op: "not", E: e}, nil
	}
	if p.isKw("not") {
		// NOT EXISTS (...)
		p.i++
		e, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryE{Op: "not", E: e}, nil
	}
	return p.cmpExpr()
}

func (p *parser) nextIsExists() bool {
	t := p.toks[p.i+1]
	return t.kind == tkIdent && strings.EqualFold(t.text, "exists")
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.isKw("is") {
		p.i++
		neg := p.acceptKw("not")
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return &IsNullE{E: l, Neg: neg}, nil
	}
	t := p.peek()
	if t.kind == tkPunct {
		switch t.text {
		case "=", "<", ">", "<=", ">=", "<>", "!=":
			p.i++
			op := t.text
			if op == "!=" {
				op = "<>"
			}
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BinaryE{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkPunct && (t.text == "+" || t.text == "-") {
			p.i++
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryE{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tkPunct && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.i++
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryE{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.peek()
	if t.kind == tkPunct && t.text == "-" {
		p.i++
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*LitE); ok && lit.V.IsNumeric() {
			return negLit(lit), nil
		}
		return &UnaryE{Op: "-", E: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tkString || t.kind == tkInt || t.kind == tkFloat:
		p.i++
		v, err := litFromToken(t)
		if err != nil {
			return nil, err
		}
		return &LitE{V: v}, nil
	case t.kind == tkParam:
		p.i++
		idx := p.params
		p.params++
		return &ParamE{Idx: idx}, nil
	case t.kind == tkPunct && t.text == "(":
		p.i++
		if p.isKw("select") || p.isKw("values") {
			c, err := p.compound()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &SubqueryE{Q: c}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tkIdent && strings.EqualFold(t.text, "exists"):
		p.i++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		c, err := p.compound()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &ExistsE{Q: c}, nil
	case t.kind == tkIdent && strings.EqualFold(t.text, "null"):
		p.i++
		return &LitE{}, nil
	case t.kind == tkIdent && strings.EqualFold(t.text, "true"):
		p.i++
		return &LitE{V: xdm.True}, nil
	case t.kind == tkIdent && strings.EqualFold(t.text, "false"):
		p.i++
		return &LitE{V: xdm.False}, nil
	case t.kind == tkIdent || t.kind == tkQIdent:
		p.i++
		name := t.text
		// function call?
		if t.kind == tkIdent && p.accept("(") {
			return p.callTail(name)
		}
		if p.accept(".") {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColE{Qual: name, Name: col}, nil
		}
		return &ColE{Name: name}, nil
	default:
		return nil, fmt.Errorf("sqlshim: unexpected token %q in expression", t.text)
	}
}

func (p *parser) callTail(name string) (Expr, error) {
	lname := strings.ToLower(name)
	call := &CallE{Name: lname}
	if p.accept("*") {
		call.Star = true
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if !p.accept(")") {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, e)
			if p.accept(",") {
				continue
			}
			break
		}
		if p.acceptKw("order") {
			if err := p.expectKw("by"); err != nil {
				return nil, err
			}
			specs, err := p.orderSpecs()
			if err != nil {
				return nil, err
			}
			call.OrderBy = specs
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if lname == "row_number" && p.isKw("over") {
		p.i++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		w := &WindowE{Fn: "row_number"}
		if p.acceptKw("partition") {
			if err := p.expectKw("by"); err != nil {
				return nil, err
			}
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				w.PartitionBy = append(w.PartitionBy, e)
				if !p.accept(",") {
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return w, nil
	}
	return call, nil
}
