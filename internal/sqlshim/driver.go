package sqlshim

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"sync"

	"quark/internal/xdm"
)

// The sqlshim database/sql driver. Data source names identify in-memory
// databases: every connection opened with the same non-empty DSN shares one
// DB (the connector resolves the DSN once, so pooled connections all see the
// same state). Use Detach to drop a named database when done.

func init() {
	sql.Register("sqlshim", shimDriver{})
}

var registry = struct {
	sync.Mutex
	m map[string]*DB
}{m: map[string]*DB{}}

func openNamed(name string) *DB {
	registry.Lock()
	defer registry.Unlock()
	db, ok := registry.m[name]
	if !ok {
		db = NewDB()
		registry.m[name] = db
	}
	return db
}

// Detach removes the named in-memory database from the driver registry.
func Detach(name string) {
	registry.Lock()
	defer registry.Unlock()
	delete(registry.m, name)
}

type shimDriver struct{}

func (shimDriver) Open(name string) (driver.Conn, error) {
	return &shimConn{db: openNamed(name)}, nil
}

func (shimDriver) OpenConnector(name string) (driver.Connector, error) {
	return shimConnector{db: openNamed(name)}, nil
}

type shimConnector struct{ db *DB }

func (c shimConnector) Connect(context.Context) (driver.Conn, error) {
	return &shimConn{db: c.db}, nil
}

func (c shimConnector) Driver() driver.Driver { return shimDriver{} }

type shimConn struct{ db *DB }

func (c *shimConn) Prepare(query string) (driver.Stmt, error) {
	return &shimStmt{db: c.db, sql: query}, nil
}

func (c *shimConn) Close() error { return nil }

// Begin returns a no-op transaction: the shim applies statements eagerly and
// relies on the caller (relsql) for atomicity at the commit-cycle level.
func (c *shimConn) Begin() (driver.Tx, error) { return noopTx{}, nil }

type noopTx struct{}

func (noopTx) Commit() error   { return nil }
func (noopTx) Rollback() error { return nil }

type shimStmt struct {
	db  *DB
	sql string
}

func (s *shimStmt) Close() error  { return nil }
func (s *shimStmt) NumInput() int { return -1 }

func (s *shimStmt) Exec(args []driver.Value) (driver.Result, error) {
	_, err := s.db.Exec(s.sql, toXDM(args)...)
	if err != nil {
		return nil, err
	}
	return driver.RowsAffected(0), nil
}

func (s *shimStmt) Query(args []driver.Value) (driver.Rows, error) {
	res, err := s.db.Exec(s.sql, toXDM(args)...)
	if err != nil {
		return nil, err
	}
	return &shimRows{res: res}, nil
}

func toXDM(args []driver.Value) []xdm.Value {
	out := make([]xdm.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			out[i] = xdm.Null
		case bool:
			out[i] = xdm.Bool(v)
		case int64:
			out[i] = xdm.Int(v)
		case float64:
			out[i] = xdm.Float(v)
		case string:
			out[i] = xdm.Str(v)
		case []byte:
			out[i] = xdm.Str(string(v))
		default:
			out[i] = xdm.Str(fmt.Sprint(v))
		}
	}
	return out
}

type shimRows struct {
	res *Result
	pos int
}

func (r *shimRows) Columns() []string { return r.res.Cols }
func (r *shimRows) Close() error      { return nil }

func (r *shimRows) Next(dest []driver.Value) error {
	if r.pos >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.pos]
	r.pos++
	for i, v := range row {
		dest[i] = Canon(v)
	}
	return nil
}

// Canon converts an xdm value to a canonical driver value: scalars map to
// their native Go types; nodes and sequences map to their injective Key
// string so result comparison across the SQL boundary stays exact.
func Canon(v xdm.Value) driver.Value {
	switch v.Kind() {
	case xdm.KindNull:
		return nil
	case xdm.KindBool:
		return v.AsBool()
	case xdm.KindInt:
		return v.AsInt()
	case xdm.KindFloat:
		return v.AsFloat()
	case xdm.KindString:
		return v.AsString()
	default:
		return v.Key()
	}
}
