package sqlshim

import (
	"database/sql"
	"strings"
	"testing"

	"quark/internal/xdm"
)

func mustExec(t *testing.T, db *DB, q string, args ...xdm.Value) *Result {
	t.Helper()
	res, err := db.Exec(q, args...)
	if err != nil {
		t.Fatalf("%v", err)
	}
	return res
}

func newPeople(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE people (id INTEGER, name VARCHAR, age INTEGER, PRIMARY KEY (id))")
	mustExec(t, db, "INSERT INTO people VALUES (1, 'ann', 30), (2, 'bob', 25), (3, 'o''hara', 41)")
	return db
}

func rowStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if v.IsNull() {
				parts[j] = "∅"
			} else {
				parts[j] = v.Lexical()
			}
		}
		out[i] = strings.Join(parts, ",")
	}
	return out
}

func wantRows(t *testing.T, res *Result, want ...string) {
	t.Helper()
	got := rowStrings(res)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

func TestCRUDAndParams(t *testing.T) {
	db := newPeople(t)
	mustExec(t, db, "INSERT INTO people (name, id, age) VALUES (?, ?, ?)",
		xdm.Str("dee"), xdm.Int(4), xdm.Int(19))
	res := mustExec(t, db, "SELECT name FROM people WHERE age > ? ORDER BY name", xdm.Int(20))
	wantRows(t, res, "ann", "bob", "o'hara")
	mustExec(t, db, "DELETE FROM people WHERE age < 30")
	if res := mustExec(t, db, "SELECT id FROM people ORDER BY id"); len(res.Rows) != 2 {
		t.Fatalf("after delete: %v", rowStrings(res))
	}
	// Quote escaping survives the round trip.
	res = mustExec(t, db, "SELECT name FROM people WHERE name = 'o''hara'")
	wantRows(t, res, "o'hara")
}

func TestQuotedIdentifiers(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE "order" ("group" INTEGER)`)
	mustExec(t, db, `INSERT INTO "order" VALUES (1)`)
	res := mustExec(t, db, `SELECT "group" FROM "order"`)
	wantRows(t, res, "1")
}

func TestJoinsAndNotExists(t *testing.T) {
	db := newPeople(t)
	mustExec(t, db, "CREATE TABLE pets (owner INTEGER, pet VARCHAR)")
	mustExec(t, db, "INSERT INTO pets VALUES (1, 'cat'), (1, 'dog'), (3, 'fox')")
	res := mustExec(t, db, `
		SELECT p.name AS name, q.pet AS pet FROM people AS p, pets AS q
		WHERE p.id = q.owner ORDER BY name, pet`)
	wantRows(t, res, "ann,cat", "ann,dog", "o'hara,fox")
	// LEFT JOIN pads the pet column with NULL.
	res = mustExec(t, db, `
		SELECT p.name AS name, q.pet AS pet
		FROM people AS p LEFT JOIN pets AS q ON p.id = q.owner
		ORDER BY name, pet`)
	wantRows(t, res, "ann,cat", "ann,dog", "bob,∅", "o'hara,fox")
	// NOT EXISTS anti-join (the renderer's pruning idiom).
	res = mustExec(t, db, `
		SELECT p.name FROM people AS p
		WHERE NOT EXISTS (SELECT 1 FROM pets AS q WHERE q.owner = p.id)`)
	wantRows(t, res, "bob")
}

func TestBagDifferenceIdiom(t *testing.T) {
	// The B_old rendering: ROW_NUMBER-tagged EXCEPT emulates EXCEPT ALL.
	db := NewDB()
	mustExec(t, db, "CREATE TABLE b (x INTEGER)")
	mustExec(t, db, "CREATE TABLE d (x INTEGER)")
	mustExec(t, db, "INSERT INTO b VALUES (7), (7), (8)")
	mustExec(t, db, "INSERT INTO d VALUES (7)")
	res := mustExec(t, db, `
		SELECT x FROM (
			SELECT x, ROW_NUMBER() OVER (PARTITION BY x) AS occ_ FROM b
			EXCEPT
			SELECT x, ROW_NUMBER() OVER (PARTITION BY x) AS occ_ FROM d
		) ORDER BY x`)
	wantRows(t, res, "7", "8")
	// Plain EXCEPT is set-semantics: both 7s vanish.
	res = mustExec(t, db, "SELECT x FROM b EXCEPT SELECT x FROM d")
	wantRows(t, res, "8")
	// UNION dedups, UNION ALL does not.
	res = mustExec(t, db, "SELECT x FROM b UNION SELECT x FROM d")
	if len(res.Rows) != 2 {
		t.Fatalf("UNION: %v", rowStrings(res))
	}
	res = mustExec(t, db, "SELECT x FROM b UNION ALL SELECT x FROM d")
	if len(res.Rows) != 4 {
		t.Fatalf("UNION ALL: %v", rowStrings(res))
	}
}

func TestGroupByAndAggregates(t *testing.T) {
	db := newPeople(t)
	mustExec(t, db, "INSERT INTO people VALUES (4, 'ann', 50)")
	res := mustExec(t, db, `
		SELECT name, COUNT(*), SUM(age), MIN(age), MAX(age), AVG(age)
		FROM people GROUP BY name ORDER BY name`)
	wantRows(t, res,
		"ann,2,80,30,50,40.00",
		"bob,1,25,25,25,25.00",
		"o'hara,1,41,41,41,41.00")
	// Global aggregate over an empty input yields one row (COUNT = 0).
	res = mustExec(t, db, "SELECT COUNT(*) FROM people WHERE age > 1000")
	wantRows(t, res, "0")
}

func TestThreeValuedLogic(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1, NULL), (NULL, NULL), (1, 1)")
	// NULL comparisons are unknown; WHERE keeps only TRUE.
	res := mustExec(t, db, "SELECT a, b FROM t WHERE a = 1 AND b = 1")
	wantRows(t, res, "1,1")
	// IS NULL / IS NOT NULL see through unknowns.
	res = mustExec(t, db, "SELECT a FROM t WHERE a IS NOT NULL AND b IS NULL")
	wantRows(t, res, "1")
	// NULL join keys never match (hash and nested-loop paths alike).
	mustExec(t, db, "CREATE TABLE u (a INTEGER)")
	mustExec(t, db, "INSERT INTO u VALUES (NULL), (1)")
	res = mustExec(t, db, "SELECT COUNT(*) FROM t, u WHERE t.a = u.a")
	wantRows(t, res, "2")
}

func TestXMLFunctionsAndPathStep(t *testing.T) {
	db := NewDB()
	res := mustExec(t, db,
		"SELECT xml_string(xml_element('v', xml_attr('p', 9), xml_element('w', 3)))")
	if got := res.Rows[0][0].AsString(); got != `<v p="9"><w>3</w></v>` {
		t.Fatalf("xml_element = %s", got)
	}
	// path_step child axis with a predicate over ITEM.
	mustExec(t, db, "CREATE TABLE n (doc VARCHAR)")
	mustExec(t, db, "INSERT INTO n VALUES ('<a><b>1</b><b>5</b></a>')")
	res = mustExec(t, db,
		"SELECT seq_count(path_step(xml_parse(doc), 'child', 'b')) FROM n")
	wantRows(t, res, "2")
	res = mustExec(t, db,
		"SELECT xml_data(path_step(xml_parse(doc), 'child', 'b', xml_data(ITEM) > 2)) FROM n")
	wantRows(t, res, "5")
}

func TestAggXMLFragOrdered(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (k INTEGER, v VARCHAR)")
	mustExec(t, db, "INSERT INTO t VALUES (2, 'b'), (1, 'a'), (3, 'c')")
	res := mustExec(t, db,
		"SELECT xml_string(xml_element('r', AGGXMLFRAG(xml_element('i', v) ORDER BY k))) FROM t")
	if got := res.Rows[0][0].AsString(); got != "<r><i>a</i><i>b</i><i>c</i></r>" {
		t.Fatalf("ordered frag = %s", got)
	}
}

func TestExplainIsDataIndependent(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	q := `EXPLAIN QUERY PLAN WITH c(a) AS (SELECT a FROM t WHERE b = 1)
		SELECT t.a FROM t JOIN c ON t.a = c.a GROUP BY t.a`
	before := strings.Join(rowStrings(mustExec(t, db, q)), "\n")
	mustExec(t, db, "INSERT INTO t VALUES (1, 1), (2, 2)")
	after := strings.Join(rowStrings(mustExec(t, db, q)), "\n")
	if before != after {
		t.Fatalf("plan changed with data:\n%s\nvs\n%s", before, after)
	}
	if !strings.Contains(before, "HASH JOIN") || !strings.Contains(before, "AGGREGATE") {
		t.Fatalf("plan misses expected steps:\n%s", before)
	}
}

func TestDatabaseSQLDriver(t *testing.T) {
	sdb, err := sql.Open("sqlshim", "driver-test")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		Detach("driver-test")
		sdb.Close()
	}()
	if _, err := sdb.Exec("CREATE TABLE kv (k VARCHAR, v DECIMAL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.Exec("INSERT INTO kv VALUES (?, ?)", "pi", 3.5); err != nil {
		t.Fatal(err)
	}
	rows, err := sdb.Query("SELECT k, v FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no rows")
	}
	var k string
	var v float64
	if err := rows.Scan(&k, &v); err != nil {
		t.Fatal(err)
	}
	if k != "pi" || v != 3.5 {
		t.Fatalf("got %s=%v", k, v)
	}
}
