package sqlshim

import (
	"fmt"

	"quark/internal/xdm"
)

// env is the expression evaluation environment: statement context, the scope
// chain of visible row bindings, and per-projection window/aggregate values.
type env struct {
	ctx *qctx
	sc  *scope
	win map[*WindowE]xdm.Value
	agg map[*CallE]xdm.Value
}

// evalExpr evaluates e with the evaluator's value semantics (3VL logic,
// null-propagating comparison/arithmetic via xdm.CompareOp/xdm.Arith).
func evalExpr(en *env, e Expr) (xdm.Value, error) {
	switch x := e.(type) {
	case *LitE:
		return x.V, nil
	case *ParamE:
		if x.Idx >= len(en.ctx.args) {
			return xdm.Null, fmt.Errorf("sqlshim: missing parameter %d", x.Idx+1)
		}
		return en.ctx.args[x.Idx], nil
	case *ColE:
		return en.sc.resolve(x.Qual, x.Name)
	case *UnaryE:
		v, err := evalExpr(en, x.E)
		if err != nil {
			return xdm.Null, err
		}
		if x.Op == "not" {
			if v.IsNull() {
				return xdm.Null, nil
			}
			return xdm.Bool(!v.EffectiveBool()), nil
		}
		v = xdm.Atomize(v)
		if v.IsNull() {
			return xdm.Null, nil
		}
		if v.Kind() == xdm.KindInt {
			return xdm.Int(-v.AsInt()), nil
		}
		return xdm.Float(-v.AsFloat()), nil
	case *BinaryE:
		l, err := evalExpr(en, x.L)
		if err != nil {
			return xdm.Null, err
		}
		r, err := evalExpr(en, x.R)
		if err != nil {
			return xdm.Null, err
		}
		switch x.Op {
		case "=", "<>", "<", "<=", ">", ">=":
			op := x.Op
			if op == "<>" {
				op = "!="
			}
			return xdm.CompareOp(op, l, r)
		default:
			op := x.Op
			switch op {
			case "/":
				op = "div"
			case "%":
				op = "mod"
			}
			return xdm.Arith(op, xdm.Atomize(l), xdm.Atomize(r))
		}
	case *LogicE:
		sawNull := false
		for _, a := range x.Args {
			v, err := evalExpr(en, a)
			if err != nil {
				return xdm.Null, err
			}
			if v.IsNull() {
				sawNull = true
				continue
			}
			if x.Op == "and" && !v.EffectiveBool() {
				return xdm.False, nil
			}
			if x.Op == "or" && v.EffectiveBool() {
				return xdm.True, nil
			}
		}
		if sawNull {
			return xdm.Null, nil
		}
		return xdm.Bool(x.Op == "and"), nil
	case *IsNullE:
		v, err := evalExpr(en, x.E)
		if err != nil {
			return xdm.Null, err
		}
		return xdm.Bool(v.IsNull() != x.Neg), nil
	case *CallE:
		if isAggName(x.Name) {
			if v, ok := en.agg[x]; ok {
				return v, nil
			}
			return xdm.Null, fmt.Errorf("sqlshim: aggregate %s outside aggregation context", x.Name)
		}
		if x.Name == "path_step" {
			return evalPathStep(en, x)
		}
		vals := make([]xdm.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := evalExpr(en, a)
			if err != nil {
				return xdm.Null, err
			}
			vals[i] = v
		}
		return callScalar(x.Name, vals)
	case *ExistsE:
		res, err := runCompound(en.ctx, x.Q, en.sc)
		if err != nil {
			return xdm.Null, err
		}
		return xdm.Bool(len(res.Rows) > 0), nil
	case *SubqueryE:
		res, err := runCompound(en.ctx, x.Q, en.sc)
		if err != nil {
			return xdm.Null, err
		}
		if len(res.Rows) == 0 {
			return xdm.Null, nil
		}
		if len(res.Rows) > 1 {
			return xdm.Null, fmt.Errorf("sqlshim: scalar subquery returned %d rows", len(res.Rows))
		}
		return res.Rows[0][0], nil
	case *WindowE:
		if v, ok := en.win[x]; ok {
			return v, nil
		}
		return xdm.Null, fmt.Errorf("sqlshim: window function outside projection")
	default:
		return xdm.Null, fmt.Errorf("sqlshim: unknown expression %T", e)
	}
}
