// Package fixtures builds the paper's running example (Figures 2-5): the
// product/vendor schema, its data, and the catalog view XQGM graph, for use
// by tests and examples across packages.
package fixtures

import (
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
	"quark/internal/xqgm"
)

// Column positions in the catalog-view top operator's output.
const (
	CatalogNodeCol = 0 // the <catalog> element
)

// OpenPaperDB creates the product/vendor database loaded with the Figure 2
// rows.
func OpenPaperDB() (*reldb.DB, error) {
	db, err := reldb.Open(schema.ProductVendor())
	if err != nil {
		return nil, err
	}
	if err := LoadPaperData(db); err != nil {
		return nil, err
	}
	return db, nil
}

// LoadPaperData inserts the Figure 2 rows into db.
func LoadPaperData(db *reldb.DB) error {
	if err := db.Insert("product",
		reldb.Row{xdm.Str("P1"), xdm.Str("CRT 15"), xdm.Str("Samsung")},
		reldb.Row{xdm.Str("P2"), xdm.Str("LCD 19"), xdm.Str("Samsung")},
		reldb.Row{xdm.Str("P3"), xdm.Str("CRT 15"), xdm.Str("Viewsonic")},
	); err != nil {
		return err
	}
	return db.Insert("vendor",
		reldb.Row{xdm.Str("Amazon"), xdm.Str("P1"), xdm.Float(100)},
		reldb.Row{xdm.Str("Bestbuy"), xdm.Str("P1"), xdm.Float(120)},
		reldb.Row{xdm.Str("Circuitcity"), xdm.Str("P1"), xdm.Float(150)},
		reldb.Row{xdm.Str("Buy.com"), xdm.Str("P2"), xdm.Float(200)},
		reldb.Row{xdm.Str("Bestbuy"), xdm.Str("P2"), xdm.Float(180)},
		reldb.Row{xdm.Str("Bestbuy"), xdm.Str("P3"), xdm.Float(120)},
		reldb.Row{xdm.Str("Circuitcity"), xdm.Str("P3"), xdm.Float(140)},
	)
}

// CatalogView holds the XQGM graph of the paper's catalog view (Figure 5)
// together with the positions of interesting operators and columns.
type CatalogView struct {
	Root *xqgm.Operator // box 9: Project(<catalog>...)

	// Box references, numbered as in Figure 5.
	ProductTable *xqgm.Operator // box 1
	VendorTable  *xqgm.Operator // box 2
	PVJoin       *xqgm.Operator // box 3
	VendorProj   *xqgm.Operator // box 4
	NameGroup    *xqgm.Operator // box 5
	CountSelect  *xqgm.Operator // box 6
	ProductProj  *xqgm.Operator // box 7 (the trigger Path graph top, Fig 5A)
	CatalogGroup *xqgm.Operator // box 8

	// Column positions in ProductProj's output.
	ProdNodeCol  int // the <product> element
	ProdNameCol  int // $pname (canonical key of box 7)
	ProdCountCol int // the vendor count (for condition pushdown tests)
}

// BuildCatalogView constructs the Figure 5 graph over the given schema
// (which must be the ProductVendor schema). MinVendors is the selection
// constant of box 6 (2 in the paper).
func BuildCatalogView(s *schema.Schema, minVendors int64) *CatalogView {
	prodDef, _ := s.Table("product")
	vendDef, _ := s.Table("vendor")

	// Box 1, 2.
	prod := xqgm.NewTable(prodDef, xqgm.SrcBase) // pid(0), pname(1), mfr(2)
	vend := xqgm.NewTable(vendDef, xqgm.SrcBase) // vid(0), pid(1), price(2)

	// Box 3: join on product.pid = vendor.pid.
	// Output: pid(0), pname(1), mfr(2), vid(3), v.pid(4), price(5).
	join := xqgm.NewJoin(xqgm.JoinInner, prod, vend, []xqgm.JoinEq{{L: 0, R: 1}}, nil)

	// Box 4: construct <vendor> elements; carry keys (p.pid, vid, v.pid)
	// and the grouping column pname.
	// Children in default-view column order (vid, pid, price), matching the
	// $vendor/* expansion of Figure 3.
	vendorElem := &xqgm.ElemCtor{
		Name: "vendor",
		Children: []xqgm.Expr{
			&xqgm.ElemCtor{Name: "vid", Children: []xqgm.Expr{xqgm.Col(3)}},
			&xqgm.ElemCtor{Name: "pid", Children: []xqgm.Expr{xqgm.Col(4)}},
			&xqgm.ElemCtor{Name: "price", Children: []xqgm.Expr{xqgm.Col(5)}},
		},
	}
	vproj := xqgm.NewProject(join,
		xqgm.Proj{Name: "ppid", E: xqgm.Col(0)},
		xqgm.Proj{Name: "vid", E: xqgm.Col(3)},
		xqgm.Proj{Name: "vpid", E: xqgm.Col(4)},
		xqgm.Proj{Name: "pname", E: xqgm.Col(1)},
		xqgm.Proj{Name: "vendorElem", E: vendorElem},
	)

	// Box 5: group by pname; aggXMLFrag(vendorElem) and count(*).
	group := xqgm.NewGroupBy(vproj, []int{3},
		xqgm.Agg{Name: "vendors", Func: xqgm.AggXMLFrag, Arg: xqgm.Col(4)},
		xqgm.Agg{Name: "cnt", Func: xqgm.AggCount},
	)

	// Box 6: count >= minVendors.
	sel := xqgm.NewSelect(group, &xqgm.Cmp{Op: ">=", L: xqgm.Col(2), R: xqgm.LitOf(xdm.Int(minVendors))})

	// Box 7: construct <product name=...>{vendors}</product>; carry pname
	// (the canonical key) and cnt (used by condition tests).
	prodElem := &xqgm.ElemCtor{
		Name:     "product",
		Attrs:    []xqgm.AttrSpec{{Name: "name", E: xqgm.Col(0)}},
		Children: []xqgm.Expr{xqgm.Col(1)},
	}
	pproj := xqgm.NewProject(sel,
		xqgm.Proj{Name: "product", E: prodElem},
		xqgm.Proj{Name: "pname", E: xqgm.Col(0)},
		xqgm.Proj{Name: "cnt", E: xqgm.Col(2)},
	)

	// Box 8: global aggXMLFrag over products.
	cgroup := xqgm.NewGroupBy(pproj, nil,
		xqgm.Agg{Name: "products", Func: xqgm.AggXMLFrag, Arg: xqgm.Col(0)},
	)

	// Box 9: the <catalog> wrapper.
	catalogElem := &xqgm.ElemCtor{Name: "catalog", Children: []xqgm.Expr{xqgm.Col(0)}}
	root := xqgm.NewProject(cgroup, xqgm.Proj{Name: "catalog", E: catalogElem})

	xqgm.DeriveKeys(root)
	return &CatalogView{
		Root:         root,
		ProductTable: prod,
		VendorTable:  vend,
		PVJoin:       join,
		VendorProj:   vproj,
		NameGroup:    group,
		CountSelect:  sel,
		ProductProj:  pproj,
		CatalogGroup: cgroup,
		ProdNodeCol:  0,
		ProdNameCol:  1,
		ProdCountCol: 2,
	}
}
