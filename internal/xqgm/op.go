// Package xqgm implements the XML Query Graph Model from XPERANTO/Quark
// (paper Section 2.1, Table 1): the operator algebra used to represent XML
// views, trigger paths/conditions/actions, affected-key graphs, and the
// final relational trigger bodies. Operators produce tuples whose column
// values are XML nodes/values (package xdm); XML construction functions are
// embedded in Project operators and in aggXMLFrag aggregates.
//
// Canonical keys (paper Definition 1, Table 3 / Appendix A) are derived
// bottom-up by DeriveKeys and drive both trigger-specifiability (Theorem 1)
// and the affected-key algorithm (Figure 8).
package xqgm

import (
	"fmt"
	"strings"

	"quark/internal/schema"
)

// OpType identifies an operator (paper Table 1, plus the Constants table
// from Section 5.1 and OrderBy for the sorted outer union).
type OpType uint8

// Operator types.
const (
	OpTable OpType = iota
	OpSelect
	OpProject
	OpJoin
	OpGroupBy
	OpUnion
	OpUnnest
	OpConstants
	OpOrderBy
)

func (t OpType) String() string {
	switch t {
	case OpTable:
		return "Table"
	case OpSelect:
		return "Select"
	case OpProject:
		return "Project"
	case OpJoin:
		return "Join"
	case OpGroupBy:
		return "GroupBy"
	case OpUnion:
		return "Union"
	case OpUnnest:
		return "Unnest"
	case OpConstants:
		return "Constants"
	case OpOrderBy:
		return "OrderBy"
	default:
		return fmt.Sprintf("Op(%d)", uint8(t))
	}
}

// TableSource selects which version of a base table a Table operator reads
// (paper Section 4.2): the post-update table B, the transition tables ΔB /
// ∇B, their pruned variants (Definition 8), or the reconstructed pre-update
// table B_old = (B EXCEPT ΔB) UNION ∇B.
type TableSource uint8

// Table sources.
const (
	SrcBase TableSource = iota
	SrcDelta
	SrcNabla
	SrcDeltaPruned
	SrcNablaPruned
	SrcOld
)

func (s TableSource) String() string {
	switch s {
	case SrcBase:
		return ""
	case SrcDelta:
		return "Δ"
	case SrcNabla:
		return "∇"
	case SrcDeltaPruned:
		return "Δ'"
	case SrcNablaPruned:
		return "∇'"
	case SrcOld:
		return "old"
	default:
		return "?"
	}
}

// JoinKind selects join semantics. Anti joins pad the absent side with
// nulls in the output (used by CreateANGraph for INSERT/DELETE events).
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeftOuter
	JoinLeftAnti  // left rows with no right match; right columns null
	JoinRightAnti // right rows with no left match; left columns null
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "Join"
	case JoinLeftOuter:
		return "LeftOuterJoin"
	case JoinLeftAnti:
		return "LeftAntiJoin"
	case JoinRightAnti:
		return "RightAntiJoin"
	default:
		return "Join?"
	}
}

// JoinEq is one equi-join column pair: column L of the LEFT input equals
// column R of the RIGHT input (both in the respective input's own output
// positions, not join-output positions).
type JoinEq struct {
	L, R int
}

// Proj is one output column of a Project operator.
type Proj struct {
	Name string
	E    Expr
}

// AggFunc is an aggregate function for GroupBy operators. AggXMLFrag is the
// paper's aggXMLFrag(): it concatenates XML fragments in a group into a
// sequence.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
	AggXMLFrag
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	case AggXMLFrag:
		return "aggXMLFrag"
	default:
		return "agg?"
	}
}

// Distributive reports whether the aggregate can be inverted from new
// values and transition deltas (paper Section 5.2, GROUPED-AGG); count and
// sum are self-maintainable in both directions.
func (f AggFunc) Distributive() bool { return f == AggCount || f == AggSum }

// Agg is one aggregate column of a GroupBy. Arg nil means count(*).
type Agg struct {
	Name string
	Func AggFunc
	Arg  Expr
}

// OrderCol is one sort key of an OrderBy operator.
type OrderCol struct {
	Col  int
	Desc bool
}

// Operator is one node of an XQGM graph. Graphs are DAGs: operators may be
// shared between parents. The exported fields are populated according to
// Type; see the builder functions.
type Operator struct {
	Type   OpType
	Inputs []*Operator

	// OpTable
	Table   string
	Source  TableSource
	TablePK []int // primary-key column indexes (filled by NewTable)
	Width   int   // number of columns
	Names   []string

	// OpConstants
	ConstRows [][]Expr // literal rows (exprs must be Lit)

	// OpSelect / extra join predicate
	Pred Expr

	// OpProject
	Projs []Proj

	// OpJoin
	JoinKind JoinKind
	On       []JoinEq
	JoinPred Expr // optional non-equi residual predicate

	// OpGroupBy
	GroupCols []int
	Aggs      []Agg

	// OpUnion
	Distinct bool

	// OpOrderBy
	OrderCols []OrderCol

	// OpUnnest
	UnnestCol int

	// Key holds the output-column indexes of the canonical key, derived by
	// DeriveKeys. Nil means no canonical key (e.g. below an Unnest).
	Key []int

	// constRows / constBuild cache a Constants operator's evaluated rows
	// and hash-join build table (constants are immutable literals, and
	// grouped trigger plans join them on every firing).
	constRows  []Tuple
	constBuild map[string]*constBuildEntry
}

// constBuildEntry is a cached hash-join build table for a Constants input,
// keyed by the join's equi-column signature.
type constBuildEntry struct {
	byKey map[string][]Tuple
}

// NewTable builds a Table operator over a base table described by def.
func NewTable(def *schema.Table, src TableSource) *Operator {
	return &Operator{
		Type:    OpTable,
		Table:   def.Name,
		Source:  src,
		TablePK: def.PKIndexes(),
		Width:   len(def.Columns),
		Names:   def.ColNames(),
	}
}

// NewConstants builds a Constants operator with the given column names and
// literal rows (paper Section 5.1 constants table).
func NewConstants(names []string, rows [][]Expr) *Operator {
	return &Operator{Type: OpConstants, Names: names, Width: len(names), ConstRows: rows}
}

// NewSelect builds a Select restricting in by pred; output schema = input.
func NewSelect(in *Operator, pred Expr) *Operator {
	return &Operator{Type: OpSelect, Inputs: []*Operator{in}, Pred: pred}
}

// NewProject builds a Project computing projs over in.
func NewProject(in *Operator, projs ...Proj) *Operator {
	return &Operator{Type: OpProject, Inputs: []*Operator{in}, Projs: projs}
}

// NewJoin builds a Join of kind over (l, r) with equi-join pairs on and an
// optional residual predicate.
func NewJoin(kind JoinKind, l, r *Operator, on []JoinEq, residual Expr) *Operator {
	return &Operator{Type: OpJoin, JoinKind: kind, Inputs: []*Operator{l, r}, On: on, JoinPred: residual}
}

// NewGroupBy builds a GroupBy over in, grouping on the given input columns
// and computing aggs.
func NewGroupBy(in *Operator, groupCols []int, aggs ...Agg) *Operator {
	return &Operator{Type: OpGroupBy, Inputs: []*Operator{in}, GroupCols: groupCols, Aggs: aggs}
}

// NewUnion builds a Union of the inputs; distinct selects set semantics.
// All inputs must have the same width.
func NewUnion(distinct bool, ins ...*Operator) *Operator {
	return &Operator{Type: OpUnion, Distinct: distinct, Inputs: ins}
}

// NewOrderBy builds an OrderBy over in.
func NewOrderBy(in *Operator, cols ...OrderCol) *Operator {
	return &Operator{Type: OpOrderBy, Inputs: []*Operator{in}, OrderCols: cols}
}

// NewUnnest builds an Unnest over in, expanding the sequence in column col
// into one row per item.
func NewUnnest(in *Operator, col int) *Operator {
	return &Operator{Type: OpUnnest, Inputs: []*Operator{in}, UnnestCol: col}
}

// OutWidth returns the number of output columns.
func (o *Operator) OutWidth() int {
	switch o.Type {
	case OpTable, OpConstants:
		return o.Width
	case OpSelect, OpOrderBy, OpUnnest:
		return o.Inputs[0].OutWidth()
	case OpProject:
		return len(o.Projs)
	case OpJoin:
		return o.Inputs[0].OutWidth() + o.Inputs[1].OutWidth()
	case OpGroupBy:
		return len(o.GroupCols) + len(o.Aggs)
	case OpUnion:
		return o.Inputs[0].OutWidth()
	default:
		return 0
	}
}

// OutNames returns the output column names (synthesized where inputs do not
// carry names).
func (o *Operator) OutNames() []string {
	switch o.Type {
	case OpTable, OpConstants:
		return o.Names
	case OpSelect, OpOrderBy, OpUnnest:
		return o.Inputs[0].OutNames()
	case OpProject:
		out := make([]string, len(o.Projs))
		for i, p := range o.Projs {
			out[i] = p.Name
		}
		return out
	case OpJoin:
		l := o.Inputs[0].OutNames()
		r := o.Inputs[1].OutNames()
		out := make([]string, 0, len(l)+len(r))
		out = append(out, l...)
		out = append(out, r...)
		return out
	case OpGroupBy:
		in := o.Inputs[0].OutNames()
		out := make([]string, 0, len(o.GroupCols)+len(o.Aggs))
		for _, c := range o.GroupCols {
			out = append(out, in[c])
		}
		for _, a := range o.Aggs {
			out = append(out, a.Name)
		}
		return out
	case OpUnion:
		return o.Inputs[0].OutNames()
	default:
		return nil
	}
}

// ColIndex returns the output position of the named column, or -1.
func (o *Operator) ColIndex(name string) int {
	for i, n := range o.OutNames() {
		if n == name {
			return i
		}
	}
	return -1
}

// DeriveKeys computes canonical keys bottom-up per paper Table 3 and stores
// them in Key on every operator in the graph. It returns the root's key
// (nil when the root has no canonical key). An operator below an Unnest, or
// a Project that drops its input's key columns, has no canonical key.
func DeriveKeys(o *Operator) []int {
	return deriveKeys(o, map[*Operator][]int{})
}

func deriveKeys(o *Operator, memo map[*Operator][]int) []int {
	if k, ok := memo[o]; ok {
		return k
	}
	// Mark in-progress to guard against cycles (graphs are DAGs, but be
	// defensive); a cycle yields no key.
	memo[o] = nil
	var key []int
	switch o.Type {
	case OpTable:
		if len(o.TablePK) > 0 {
			key = append([]int(nil), o.TablePK...)
		}
	case OpConstants:
		// Constants rows are unique by construction; all columns form a key.
		key = make([]int, o.Width)
		for i := range key {
			key[i] = i
		}
	case OpSelect, OpOrderBy:
		key = deriveKeys(o.Inputs[0], memo)
	case OpProject:
		ik := deriveKeys(o.Inputs[0], memo)
		if ik != nil {
			key = mapKeyThroughProjs(ik, o.Projs)
		}
	case OpJoin:
		lk := deriveKeys(o.Inputs[0], memo)
		rk := deriveKeys(o.Inputs[1], memo)
		switch o.JoinKind {
		case JoinLeftOuter:
			// When the join columns cover the right input's key, each left
			// row matches at most one right row (a functional join), so the
			// left key alone identifies output tuples. This is the shape
			// the compiler produces when joining grouped child fragments
			// back to their parents.
			if lk != nil && rk != nil && coveredBy(rk, o.On) {
				key = append([]int(nil), lk...)
				break
			}
			if lk != nil && rk != nil {
				lw := o.Inputs[0].OutWidth()
				key = append([]int(nil), lk...)
				for _, c := range rk {
					key = append(key, lw+c)
				}
			}
		case JoinLeftAnti:
			// Only left rows survive (at most once each): left key.
			key = append([]int(nil), lk...)
			if lk == nil {
				key = nil
			}
		case JoinRightAnti:
			if rk != nil {
				lw := o.Inputs[0].OutWidth()
				key = make([]int, len(rk))
				for i, c := range rk {
					key[i] = lw + c
				}
			}
		default:
			if lk != nil && rk != nil {
				lw := o.Inputs[0].OutWidth()
				// Functional-join refinements: when one side's key is
				// covered by the join columns, each row of the other side
				// matches at most one row of it, so the other side's key
				// alone identifies output tuples.
				switch {
				case coveredBy(rk, o.On):
					key = append([]int(nil), lk...)
				case coveredByLeft(lk, o.On):
					key = make([]int, len(rk))
					for i, c := range rk {
						key[i] = lw + c
					}
				default:
					key = append([]int(nil), lk...)
					for _, c := range rk {
						key = append(key, lw+c)
					}
					key = reduceJoinKey(key, o.On, lw)
				}
			}
		}
	case OpGroupBy:
		// The grouping columns are the key (they occupy the leading output
		// positions). Requires the input to have a key at all, because an
		// unkeyed input makes group membership ill-defined for triggers.
		if deriveKeys(o.Inputs[0], memo) != nil || o.Inputs[0].Type == OpTable {
			key = make([]int, len(o.GroupCols))
			for i := range o.GroupCols {
				key[i] = i
			}
		}
	case OpUnion:
		// Positional mapping M: input column i maps to output column i, so
		// the output key is the union of input key positions (Table 3).
		// Duplicate-preserving unions (UNION ALL) have no canonical key.
		if o.Distinct {
			set := map[int]bool{}
			ok := true
			for _, in := range o.Inputs {
				ik := deriveKeys(in, memo)
				if ik == nil {
					ok = false
					break
				}
				for _, c := range ik {
					set[c] = true
				}
			}
			if ok {
				for i := 0; i < o.OutWidth(); i++ {
					if set[i] {
						key = append(key, i)
					}
				}
			}
		}
	case OpUnnest:
		// No canonical key is derivable for Unnest (Appendix A); Theorem 1
		// removes Unnest operators by view composition.
		key = nil
	}
	o.Key = key
	memo[o] = key
	return key
}

// reduceJoinKey drops redundant key columns: when an equi-join pair has
// both of its columns in the key, the left one is implied by the right and
// can be removed (equivalence-class minimization). This keeps canonical
// keys small for PK/FK join chains (e.g. product ⋈ vendor on pid needs only
// the vendor key).
func reduceJoinKey(key []int, on []JoinEq, lw int) []int {
	inKey := map[int]bool{}
	for _, k := range key {
		inKey[k] = true
	}
	drop := map[int]bool{}
	for _, eq := range on {
		l, r := eq.L, lw+eq.R
		if inKey[l] && inKey[r] && !drop[r] {
			drop[l] = true
		}
	}
	if len(drop) == 0 {
		return key
	}
	out := key[:0]
	for _, k := range key {
		if !drop[k] {
			out = append(out, k)
		}
	}
	return out
}

// coveredBy reports whether every column of key appears as a right-side
// join column.
func coveredBy(key []int, on []JoinEq) bool {
	if len(key) == 0 {
		return true
	}
	for _, k := range key {
		found := false
		for _, eq := range on {
			if eq.R == k {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// coveredByLeft is coveredBy for the left side's join columns.
func coveredByLeft(key []int, on []JoinEq) bool {
	if len(key) == 0 {
		return true
	}
	for _, k := range key {
		found := false
		for _, eq := range on {
			if eq.L == k {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func mapKeyThroughProjs(inKey []int, projs []Proj) []int {
	out := make([]int, 0, len(inKey))
	for _, kc := range inKey {
		found := -1
		for pi, p := range projs {
			if cr, ok := p.E.(*ColRef); ok && cr.Input == 0 && cr.Col == kc {
				found = pi
				break
			}
		}
		if found < 0 {
			return nil
		}
		out = append(out, found)
	}
	return out
}

// TriggerSpecifiable reports whether every operator in the graph has a
// canonical key (paper Definition 4). DeriveKeys must run first or is run
// implicitly here.
func TriggerSpecifiable(root *Operator) bool {
	DeriveKeys(root)
	ok := true
	Walk(root, func(o *Operator) {
		if o.Key == nil {
			ok = false
		}
	})
	return ok
}

// Walk visits every operator in the DAG exactly once, children first.
func Walk(root *Operator, fn func(*Operator)) {
	seen := map[*Operator]bool{}
	var rec func(o *Operator)
	rec = func(o *Operator) {
		if o == nil || seen[o] {
			return
		}
		seen[o] = true
		for _, in := range o.Inputs {
			rec(in)
		}
		fn(o)
	}
	rec(root)
}

// Tables returns the distinct base-table names referenced by the graph.
func Tables(root *Operator) []string {
	seen := map[string]bool{}
	var out []string
	Walk(root, func(o *Operator) {
		if o.Type == OpTable && !seen[o.Table] {
			seen[o.Table] = true
			out = append(out, o.Table)
		}
	})
	return out
}

// String renders the graph as an indented tree for diagnostics.
func (o *Operator) String() string {
	var sb strings.Builder
	o.dump(&sb, 0, map[*Operator]int{}, new(int))
	return sb.String()
}

func (o *Operator) dump(sb *strings.Builder, depth int, ids map[*Operator]int, next *int) {
	pad := strings.Repeat("  ", depth)
	if id, ok := ids[o]; ok {
		fmt.Fprintf(sb, "%s(shared #%d)\n", pad, id)
		return
	}
	*next++
	ids[o] = *next
	fmt.Fprintf(sb, "%s#%d %s", pad, *next, o.Type)
	switch o.Type {
	case OpTable:
		fmt.Fprintf(sb, "(%s%s)", o.Source, o.Table)
	case OpSelect:
		fmt.Fprintf(sb, "[%s]", o.Pred)
	case OpProject:
		names := make([]string, len(o.Projs))
		for i, p := range o.Projs {
			names[i] = fmt.Sprintf("%s=%s", p.Name, p.E)
		}
		fmt.Fprintf(sb, "[%s]", strings.Join(names, ", "))
	case OpJoin:
		fmt.Fprintf(sb, "{%s on %v}", o.JoinKind, o.On)
	case OpGroupBy:
		fmt.Fprintf(sb, "{by %v aggs %d}", o.GroupCols, len(o.Aggs))
	case OpUnion:
		if o.Distinct {
			sb.WriteString("{distinct}")
		} else {
			sb.WriteString("{all}")
		}
	case OpConstants:
		fmt.Fprintf(sb, "{%d rows}", len(o.ConstRows))
	}
	if o.Key != nil {
		fmt.Fprintf(sb, " key=%v", o.Key)
	}
	sb.WriteByte('\n')
	for _, in := range o.Inputs {
		in.dump(sb, depth+1, ids, next)
	}
}
