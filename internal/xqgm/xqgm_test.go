package xqgm_test

import (
	"strings"
	"testing"

	"quark/internal/fixtures"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
	"quark/internal/xqgm"
)

func paperDB(t *testing.T) *reldb.DB {
	t.Helper()
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func evalRoot(t *testing.T, db *reldb.DB, op *xqgm.Operator, deltas map[string]*xqgm.Transition) []xqgm.Tuple {
	t.Helper()
	ctx := xqgm.NewEvalContext(db, deltas)
	out, err := ctx.Eval(op)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCatalogViewMatchesFigure4 materializes the paper's catalog view and
// checks the structure of Figure 4.
func TestCatalogViewMatchesFigure4(t *testing.T) {
	db := paperDB(t)
	v := fixtures.BuildCatalogView(db.Schema(), 2)
	out := evalRoot(t, db, v.Root, nil)
	if len(out) != 1 {
		t.Fatalf("catalog rows = %d, want 1", len(out))
	}
	cat := out[0][fixtures.CatalogNodeCol].AsNode()
	if cat == nil || cat.Name != "catalog" {
		t.Fatalf("root node = %v", cat)
	}
	prods := cat.ChildElements("product")
	if len(prods) != 2 {
		t.Fatalf("products = %d, want 2 (CRT 15, LCD 19)", len(prods))
	}
	crt, lcd := prods[0], prods[1]
	if n, _ := crt.Attribute("name"); n != "CRT 15" {
		t.Errorf("first product = %q, want CRT 15", n)
	}
	if n, _ := lcd.Attribute("name"); n != "LCD 19" {
		t.Errorf("second product = %q, want LCD 19", n)
	}
	// CRT 15 merges vendors of P1 and P3 (grouping is by product name).
	crtV := crt.ChildElements("vendor")
	if len(crtV) != 5 {
		t.Fatalf("CRT 15 vendors = %d, want 5", len(crtV))
	}
	// Intra-group document order is canonical-key order: (vid, pid).
	wantVids := []string{"Amazon", "Bestbuy", "Bestbuy", "Circuitcity", "Circuitcity"}
	for i, v := range crtV {
		if got := v.ChildElements("vid")[0].TextContent(); got != wantVids[i] {
			t.Errorf("CRT vendor[%d] vid = %q, want %q", i, got, wantVids[i])
		}
	}
	lcdV := lcd.ChildElements("vendor")
	if len(lcdV) != 2 {
		t.Fatalf("LCD 19 vendors = %d, want 2", len(lcdV))
	}
	if p := lcdV[0].ChildElements("price")[0].TextContent(); p != "180.00" {
		t.Errorf("LCD first vendor price = %q, want 180.00 (Bestbuy)", p)
	}
	// Serialization is deterministic.
	out2 := evalRoot(t, db, fixtures.BuildCatalogView(db.Schema(), 2).Root, nil)
	if cat.Serialize(false) != out2[0][0].AsNode().Serialize(false) {
		t.Error("catalog serialization not deterministic across evaluations")
	}
}

// TestCountPredicateFilters checks box 6: products with fewer than
// minVendors vendors are excluded.
func TestCountPredicateFilters(t *testing.T) {
	db := paperDB(t)
	// With threshold 3, only CRT 15 (5 vendors) qualifies.
	v := fixtures.BuildCatalogView(db.Schema(), 3)
	out := evalRoot(t, db, v.Root, nil)
	prods := out[0][0].AsNode().ChildElements("product")
	if len(prods) != 1 {
		t.Fatalf("products = %d, want 1", len(prods))
	}
	if n, _ := prods[0].Attribute("name"); n != "CRT 15" {
		t.Errorf("product = %q", n)
	}
	// Threshold 6: empty catalog, but the <catalog> element still exists.
	v6 := fixtures.BuildCatalogView(db.Schema(), 6)
	out6 := evalRoot(t, db, v6.Root, nil)
	if len(out6) != 1 {
		t.Fatalf("catalog rows = %d", len(out6))
	}
	if got := len(out6[0][0].AsNode().ChildElements("product")); got != 0 {
		t.Errorf("products = %d, want 0", got)
	}
}

// TestCanonicalKeys verifies Table 3 key derivation over the Figure 5
// graph.
func TestCanonicalKeys(t *testing.T) {
	db := paperDB(t)
	v := fixtures.BuildCatalogView(db.Schema(), 2)
	cases := []struct {
		name string
		op   *xqgm.Operator
		want []int
	}{
		{"Table(product)", v.ProductTable, []int{0}},
		{"Table(vendor)", v.VendorTable, []int{0, 1}},
		// The join key is reduced by the equi-join equivalence rule:
		// product.pid is implied by vendor.pid, leaving (vid, v.pid).
		{"Join", v.PVJoin, []int{3, 4}},
		{"Project(vendor)", v.VendorProj, []int{1, 2}},
		{"GroupBy(pname)", v.NameGroup, []int{0}},
		{"Select(count)", v.CountSelect, []int{0}},
		{"Project(product)", v.ProductProj, []int{1}},
		{"GroupBy(catalog)", v.CatalogGroup, []int{}},
		{"Project(root)", v.Root, []int{}},
	}
	for _, c := range cases {
		got := c.op.Key
		if len(got) != len(c.want) {
			t.Errorf("%s key = %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s key = %v, want %v", c.name, got, c.want)
				break
			}
		}
		if got == nil {
			t.Errorf("%s key is nil", c.name)
		}
	}
	if !xqgm.TriggerSpecifiable(v.Root) {
		t.Error("catalog view must be trigger-specifiable (Theorem 1)")
	}
}

// TestTriggerSpecifiabilityRequiresKeys: a view over a keyless table is not
// trigger-specifiable (Definition 4 / Theorem 1 contrapositive).
func TestTriggerSpecifiabilityRequiresKeys(t *testing.T) {
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name:    "nokey",
		Columns: []schema.Column{{Name: "a", Type: schema.TInt}},
	})
	def, _ := s.Table("nokey")
	tbl := xqgm.NewTable(def, xqgm.SrcBase)
	sel := xqgm.NewSelect(tbl, &xqgm.Cmp{Op: ">", L: xqgm.Col(0), R: xqgm.LitOf(xdm.Int(0))})
	if xqgm.TriggerSpecifiable(sel) {
		t.Error("view over keyless table reported trigger-specifiable")
	}
	// A Project that drops the key also loses specifiability.
	db := paperDB(t)
	pdef, _ := db.Schema().Table("product")
	p := xqgm.NewTable(pdef, xqgm.SrcBase)
	proj := xqgm.NewProject(p, xqgm.Proj{Name: "pname", E: xqgm.Col(1)})
	if xqgm.TriggerSpecifiable(proj) {
		t.Error("key-dropping Project reported trigger-specifiable")
	}
	// Unnest has no canonical key (Appendix A).
	un := xqgm.NewUnnest(xqgm.NewProject(p, xqgm.Proj{Name: "x", E: xqgm.Col(0)}), 0)
	if xqgm.TriggerSpecifiable(un) {
		t.Error("Unnest reported trigger-specifiable")
	}
}

func TestJoinKinds(t *testing.T) {
	db := paperDB(t)
	pdef, _ := db.Schema().Table("product")
	vdef, _ := db.Schema().Table("vendor")
	prod := xqgm.NewTable(pdef, xqgm.SrcBase)
	vend := xqgm.NewTable(vdef, xqgm.SrcBase)
	// Remove P2's vendors so P2 becomes unmatched.
	if _, err := db.Delete("vendor", func(r reldb.Row) bool { return r[1].AsString() == "P2" }); err != nil {
		t.Fatal(err)
	}

	inner := evalRoot(t, db, xqgm.NewJoin(xqgm.JoinInner, prod, vend, []xqgm.JoinEq{{L: 0, R: 1}}, nil), nil)
	if len(inner) != 5 {
		t.Errorf("inner join rows = %d, want 5", len(inner))
	}
	louter := evalRoot(t, db, xqgm.NewJoin(xqgm.JoinLeftOuter, prod, vend, []xqgm.JoinEq{{L: 0, R: 1}}, nil), nil)
	if len(louter) != 6 {
		t.Errorf("left outer rows = %d, want 6 (5 matches + null-extended P2)", len(louter))
	}
	nullRows := 0
	for _, r := range louter {
		if r[3].IsNull() {
			nullRows++
			if r[0].AsString() != "P2" {
				t.Errorf("null-extended row for %s, want P2", r[0].AsString())
			}
		}
	}
	if nullRows != 1 {
		t.Errorf("null-extended rows = %d, want 1", nullRows)
	}
	lanti := evalRoot(t, db, xqgm.NewJoin(xqgm.JoinLeftAnti, prod, vend, []xqgm.JoinEq{{L: 0, R: 1}}, nil), nil)
	if len(lanti) != 1 || lanti[0][0].AsString() != "P2" {
		t.Errorf("left anti = %v, want one P2 row", lanti)
	}
	if !lanti[0][3].IsNull() {
		t.Error("left anti right side must be null")
	}
	// Right anti: vendors without products (none here).
	ranti := evalRoot(t, db, xqgm.NewJoin(xqgm.JoinRightAnti, prod, vend, []xqgm.JoinEq{{L: 0, R: 1}}, nil), nil)
	if len(ranti) != 0 {
		t.Errorf("right anti rows = %d, want 0", len(ranti))
	}
	// Orphan a vendor, then right anti finds it.
	if err := db.Insert("vendor", reldb.Row{xdm.Str("X"), xdm.Str("P9"), xdm.Float(1)}); err != nil {
		t.Fatal(err)
	}
	ranti = evalRoot(t, db, xqgm.NewJoin(xqgm.JoinRightAnti, prod, vend, []xqgm.JoinEq{{L: 0, R: 1}}, nil), nil)
	if len(ranti) != 1 || ranti[0][4].AsString() != "P9" {
		t.Errorf("right anti = %v, want one P9 row", ranti)
	}
	if !ranti[0][0].IsNull() {
		t.Error("right anti left side must be null")
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	db := paperDB(t)
	pdef, _ := db.Schema().Table("product")
	vdef, _ := db.Schema().Table("vendor")
	prod := xqgm.NewTable(pdef, xqgm.SrcBase)
	vend := xqgm.NewTable(vdef, xqgm.SrcBase)
	// product ⋈ vendor on pid with price > 140.
	pred := &xqgm.Cmp{Op: ">", L: xqgm.Col2(2), R: xqgm.LitOf(xdm.Float(140))}
	rows := evalRoot(t, db, xqgm.NewJoin(xqgm.JoinInner, prod, vend, []xqgm.JoinEq{{L: 0, R: 1}}, pred), nil)
	if len(rows) != 3 { // 150 (P1), 200 (P2), 180 (P2)
		t.Errorf("rows = %d, want 3", len(rows))
	}
	// Cross product (no equi-keys) with a residual predicate.
	cross := evalRoot(t, db, xqgm.NewJoin(xqgm.JoinInner, prod, vend, nil,
		&xqgm.Cmp{Op: "=", L: xqgm.Col(0), R: xqgm.Col2(1)}), nil)
	if len(cross) != 7 {
		t.Errorf("cross-with-pred rows = %d, want 7", len(cross))
	}
}

func TestIndexNestedLoopJoinIsUsed(t *testing.T) {
	db := paperDB(t)
	vdef, _ := db.Schema().Table("vendor")
	// Small driving side: a one-row constants table with pid P2.
	keys := xqgm.NewConstants([]string{"pid"}, [][]xqgm.Expr{{xqgm.LitOf(xdm.Str("P2"))}})
	vend := xqgm.NewTable(vdef, xqgm.SrcBase)
	join := xqgm.NewJoin(xqgm.JoinInner, keys, vend, []xqgm.JoinEq{{L: 0, R: 1}}, nil)
	ctx := xqgm.NewEvalContext(db, nil)
	out, err := ctx.Eval(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("rows = %d, want 2 (P2 vendors)", len(out))
	}
	if ctx.Stats.IndexNLJoins != 1 {
		t.Errorf("index NL joins = %d, want 1 (stats: %+v)", ctx.Stats.IndexNLJoins, ctx.Stats)
	}
	st := db.Stats()
	if st.IndexLookups == 0 {
		t.Error("no index lookups recorded on the database")
	}
}

func TestIndexJoinThroughSelectAndProject(t *testing.T) {
	db := paperDB(t)
	vdef, _ := db.Schema().Table("vendor")
	keys := xqgm.NewConstants([]string{"pid"}, [][]xqgm.Expr{{xqgm.LitOf(xdm.Str("P1"))}})
	// vendor restricted to price < 130, projected to (pid, price).
	vend := xqgm.NewTable(vdef, xqgm.SrcBase)
	sel := xqgm.NewSelect(vend, &xqgm.Cmp{Op: "<", L: xqgm.Col(2), R: xqgm.LitOf(xdm.Float(130))})
	proj := xqgm.NewProject(sel,
		xqgm.Proj{Name: "pid", E: xqgm.Col(1)},
		xqgm.Proj{Name: "price", E: xqgm.Col(2)})
	join := xqgm.NewJoin(xqgm.JoinInner, keys, proj, []xqgm.JoinEq{{L: 0, R: 0}}, nil)
	ctx := xqgm.NewEvalContext(db, nil)
	out, err := ctx.Eval(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 { // Amazon 100, Bestbuy 120
		t.Errorf("rows = %d, want 2", len(out))
	}
	if ctx.Stats.IndexNLJoins != 1 {
		t.Errorf("expected index NL join through Select+Project, stats %+v", ctx.Stats)
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := paperDB(t)
	vdef, _ := db.Schema().Table("vendor")
	vend := xqgm.NewTable(vdef, xqgm.SrcBase)
	g := xqgm.NewGroupBy(vend, []int{1},
		xqgm.Agg{Name: "n", Func: xqgm.AggCount},
		xqgm.Agg{Name: "total", Func: xqgm.AggSum, Arg: xqgm.Col(2)},
		xqgm.Agg{Name: "lo", Func: xqgm.AggMin, Arg: xqgm.Col(2)},
		xqgm.Agg{Name: "hi", Func: xqgm.AggMax, Arg: xqgm.Col(2)},
		xqgm.Agg{Name: "mean", Func: xqgm.AggAvg, Arg: xqgm.Col(2)},
	)
	rows := evalRoot(t, db, g, nil)
	if len(rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(rows))
	}
	byPid := map[string]xqgm.Tuple{}
	for _, r := range rows {
		byPid[r[0].AsString()] = r
	}
	p1 := byPid["P1"]
	if p1[1].AsInt() != 3 || p1[2].AsFloat() != 370 || p1[3].AsFloat() != 100 || p1[4].AsFloat() != 150 {
		t.Errorf("P1 aggs = %v", p1)
	}
	if diff := p1[5].AsFloat() - 370.0/3.0; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("P1 avg = %v", p1[5])
	}
	// Global aggregate over empty input produces one row with count 0.
	empty := xqgm.NewSelect(vend, xqgm.LitOf(xdm.False))
	gg := xqgm.NewGroupBy(empty, nil,
		xqgm.Agg{Name: "n", Func: xqgm.AggCount},
		xqgm.Agg{Name: "lo", Func: xqgm.AggMin, Arg: xqgm.Col(2)},
	)
	grows := evalRoot(t, db, gg, nil)
	if len(grows) != 1 || grows[0][0].AsInt() != 0 || !grows[0][1].IsNull() {
		t.Errorf("global agg over empty = %v", grows)
	}
	// Grouped aggregate over empty input produces no rows.
	ge := xqgm.NewGroupBy(empty, []int{1}, xqgm.Agg{Name: "n", Func: xqgm.AggCount})
	if rows := evalRoot(t, db, ge, nil); len(rows) != 0 {
		t.Errorf("grouped agg over empty = %v", rows)
	}
}

func TestUnionSemantics(t *testing.T) {
	db := paperDB(t)
	pdef, _ := db.Schema().Table("product")
	prod := xqgm.NewTable(pdef, xqgm.SrcBase)
	names := xqgm.NewProject(prod, xqgm.Proj{Name: "pname", E: xqgm.Col(1)})
	// pname has a duplicate (CRT 15 twice).
	all := evalRoot(t, db, xqgm.NewUnion(false, names, names), nil)
	if len(all) != 6 {
		t.Errorf("UNION ALL rows = %d, want 6", len(all))
	}
	dist := evalRoot(t, db, xqgm.NewUnion(true, names, names), nil)
	if len(dist) != 2 {
		t.Errorf("UNION DISTINCT rows = %d, want 2", len(dist))
	}
}

func TestOrderBy(t *testing.T) {
	db := paperDB(t)
	vdef, _ := db.Schema().Table("vendor")
	vend := xqgm.NewTable(vdef, xqgm.SrcBase)
	asc := evalRoot(t, db, xqgm.NewOrderBy(vend, xqgm.OrderCol{Col: 2}), nil)
	for i := 1; i < len(asc); i++ {
		if xdm.Compare(asc[i-1][2], asc[i][2]) > 0 {
			t.Fatalf("not ascending at %d: %v > %v", i, asc[i-1][2], asc[i][2])
		}
	}
	desc := evalRoot(t, db, xqgm.NewOrderBy(vend, xqgm.OrderCol{Col: 2, Desc: true}, xqgm.OrderCol{Col: 0}), nil)
	if desc[0][2].AsFloat() != 200 {
		t.Errorf("desc first = %v", desc[0])
	}
}

func TestUnnest(t *testing.T) {
	db := paperDB(t)
	vdef, _ := db.Schema().Table("vendor")
	vend := xqgm.NewTable(vdef, xqgm.SrcBase)
	g := xqgm.NewGroupBy(vend, []int{1}, xqgm.Agg{Name: "prices", Func: xqgm.AggXMLFrag, Arg: xqgm.Col(2)})
	un := xqgm.NewUnnest(g, 1)
	rows := evalRoot(t, db, un, nil)
	if len(rows) != 7 {
		t.Errorf("unnested rows = %d, want 7", len(rows))
	}
}

func TestTableSources(t *testing.T) {
	db := paperDB(t)
	vdef, _ := db.Schema().Table("vendor")
	tr := &xqgm.Transition{
		Inserted: []reldb.Row{{xdm.Str("Amazon"), xdm.Str("P1"), xdm.Float(75)}},
		Deleted:  []reldb.Row{{xdm.Str("Amazon"), xdm.Str("P1"), xdm.Float(100)}},
	}
	// Apply the update the transition describes.
	if _, err := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
		r[2] = xdm.Float(75)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	deltas := map[string]*xqgm.Transition{"vendor": tr}

	srcRows := func(src xqgm.TableSource) []xqgm.Tuple {
		return evalRoot(t, db, xqgm.NewTable(vdef, src), deltas)
	}
	if n := len(srcRows(xqgm.SrcBase)); n != 7 {
		t.Errorf("base rows = %d", n)
	}
	if n := len(srcRows(xqgm.SrcDelta)); n != 1 {
		t.Errorf("Δ rows = %d", n)
	}
	if n := len(srcRows(xqgm.SrcNabla)); n != 1 {
		t.Errorf("∇ rows = %d", n)
	}
	// B_old: 7 rows, with Amazon/P1 back at price 100.
	old := srcRows(xqgm.SrcOld)
	if len(old) != 7 {
		t.Fatalf("B_old rows = %d, want 7", len(old))
	}
	found := false
	for _, r := range old {
		if r[0].AsString() == "Amazon" {
			found = true
			if r[2].AsFloat() != 100 {
				t.Errorf("B_old Amazon price = %v, want 100", r[2])
			}
		}
	}
	if !found {
		t.Error("Amazon missing from B_old")
	}
}

func TestPrunedTransitionTables(t *testing.T) {
	db := paperDB(t)
	vdef, _ := db.Schema().Table("vendor")
	// A no-op update (SET price = price): Δ == ∇, pruned tables are empty
	// (Definition 8; avoids spurious updates, Appendix F.1).
	same := reldb.Row{xdm.Str("Amazon"), xdm.Str("P1"), xdm.Float(100)}
	changed := reldb.Row{xdm.Str("Bestbuy"), xdm.Str("P1"), xdm.Float(110)}
	orig := reldb.Row{xdm.Str("Bestbuy"), xdm.Str("P1"), xdm.Float(120)}
	deltas := map[string]*xqgm.Transition{"vendor": {
		Inserted: []reldb.Row{same, changed},
		Deleted:  []reldb.Row{same, orig},
	}}
	dp := evalRoot(t, db, xqgm.NewTable(vdef, xqgm.SrcDeltaPruned), deltas)
	np := evalRoot(t, db, xqgm.NewTable(vdef, xqgm.SrcNablaPruned), deltas)
	if len(dp) != 1 || dp[0][2].AsFloat() != 110 {
		t.Errorf("Δ' = %v, want only the changed row", dp)
	}
	if len(np) != 1 || np[0][2].AsFloat() != 120 {
		t.Errorf("∇' = %v, want only the original changed row", np)
	}
}

func TestCloneAndWithOldTable(t *testing.T) {
	db := paperDB(t)
	v := fixtures.BuildCatalogView(db.Schema(), 2)
	c := xqgm.Clone(v.Root)
	if c == v.Root {
		t.Fatal("clone returned original")
	}
	// Structure is preserved.
	if c.String() != v.Root.String() {
		t.Errorf("clone structure differs:\n%s\nvs\n%s", c, v.Root)
	}
	// Sharing is preserved: the product table appears once in the clone.
	tables := 0
	xqgm.Walk(c, func(o *xqgm.Operator) {
		if o.Type == xqgm.OpTable {
			tables++
		}
	})
	if tables != 2 {
		t.Errorf("clone has %d table ops, want 2", tables)
	}
	// WithOldTable flips only the vendor table's source.
	old := xqgm.WithOldTable(v.Root, "vendor")
	xqgm.Walk(old, func(o *xqgm.Operator) {
		if o.Type == xqgm.OpTable {
			switch o.Table {
			case "vendor":
				if o.Source != xqgm.SrcOld {
					t.Error("vendor table not switched to SrcOld")
				}
			case "product":
				if o.Source != xqgm.SrcBase {
					t.Error("product table should stay SrcBase")
				}
			}
		}
	})
	// Original untouched.
	if v.VendorTable.Source != xqgm.SrcBase {
		t.Error("WithOldTable mutated the original graph")
	}
	// G_old over an updated database reconstructs the old view.
	if _, err := db.UpdateByPK("vendor", []xdm.Value{xdm.Str("Buy.com"), xdm.Str("P2")}, func(r reldb.Row) reldb.Row {
		r[2] = xdm.Float(500)
		return r
	}); err != nil {
		t.Fatal(err)
	}
	deltas := map[string]*xqgm.Transition{"vendor": {
		Inserted: []reldb.Row{{xdm.Str("Buy.com"), xdm.Str("P2"), xdm.Float(500)}},
		Deleted:  []reldb.Row{{xdm.Str("Buy.com"), xdm.Str("P2"), xdm.Float(200)}},
	}}
	newCat := evalRoot(t, db, v.Root, deltas)[0][0].AsNode().Serialize(false)
	oldCat := evalRoot(t, db, old, deltas)[0][0].AsNode().Serialize(false)
	if !strings.Contains(newCat, "500.00") || strings.Contains(newCat, ">200.00<") {
		t.Errorf("new view wrong: %s", newCat)
	}
	if !strings.Contains(oldCat, "200.00") || strings.Contains(oldCat, "500.00") {
		t.Errorf("old view wrong: %s", oldCat)
	}
}

func TestTablesAndWalk(t *testing.T) {
	db := paperDB(t)
	v := fixtures.BuildCatalogView(db.Schema(), 2)
	ts := xqgm.Tables(v.Root)
	if len(ts) != 2 {
		t.Fatalf("tables = %v", ts)
	}
	set := map[string]bool{ts[0]: true, ts[1]: true}
	if !set["product"] || !set["vendor"] {
		t.Errorf("tables = %v", ts)
	}
	n := 0
	xqgm.Walk(v.Root, func(*xqgm.Operator) { n++ })
	if n != 9 {
		t.Errorf("walked %d operators, want 9 (Figure 5 boxes)", n)
	}
}

func TestExpressionErrors(t *testing.T) {
	db := paperDB(t)
	pdef, _ := db.Schema().Table("product")
	prod := xqgm.NewTable(pdef, xqgm.SrcBase)
	bad := xqgm.NewProject(prod, xqgm.Proj{Name: "x", E: &xqgm.Call{Name: "nosuchfn", Args: []xqgm.Expr{xqgm.Col(0)}}})
	ctx := xqgm.NewEvalContext(db, nil)
	if _, err := ctx.Eval(bad); err == nil {
		t.Error("unknown function should error")
	}
	oob := xqgm.NewProject(prod, xqgm.Proj{Name: "x", E: xqgm.Col(99)})
	ctx2 := xqgm.NewEvalContext(db, nil)
	if _, err := ctx2.Eval(oob); err == nil {
		t.Error("out-of-range column should error")
	}
}

func TestExprHelpers(t *testing.T) {
	e := &xqgm.Cmp{Op: "=", L: xqgm.Col(2), R: &xqgm.Arith{Op: "+", L: xqgm.Col(5), R: xqgm.LitOf(xdm.Int(1))}}
	cols := xqgm.ExprCols(e)
	if len(cols) != 2 {
		t.Errorf("ExprCols = %v", cols)
	}
	shifted := xqgm.ShiftCols(e, 10)
	sc := xqgm.ExprCols(shifted)
	set := map[int]bool{}
	for _, c := range sc {
		set[c] = true
	}
	if !set[12] || !set[15] {
		t.Errorf("shifted cols = %v", sc)
	}
	sub := xqgm.SubstituteCols(e, map[int]int{2: 0, 5: 1})
	ss := xqgm.ExprCols(sub)
	set = map[int]bool{}
	for _, c := range ss {
		set[c] = true
	}
	if !set[0] || !set[1] {
		t.Errorf("substituted cols = %v", ss)
	}
}

func TestLogicThreeValued(t *testing.T) {
	env := &xqgm.Env{}
	tv := func(e xqgm.Expr) xdm.Value {
		v, err := e.Eval(env)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	null := xqgm.LitOf(xdm.Null)
	tru := xqgm.LitOf(xdm.True)
	fls := xqgm.LitOf(xdm.False)
	if v := tv(&xqgm.Logic{Op: "and", Args: []xqgm.Expr{tru, null}}); !v.IsNull() {
		t.Errorf("true AND null = %v", v)
	}
	if v := tv(&xqgm.Logic{Op: "and", Args: []xqgm.Expr{fls, null}}); v.IsNull() || v.AsBool() {
		t.Errorf("false AND null = %v", v)
	}
	if v := tv(&xqgm.Logic{Op: "or", Args: []xqgm.Expr{tru, null}}); v.IsNull() || !v.AsBool() {
		t.Errorf("true OR null = %v", v)
	}
	if v := tv(&xqgm.Logic{Op: "or", Args: []xqgm.Expr{fls, null}}); !v.IsNull() {
		t.Errorf("false OR null = %v", v)
	}
	if v := tv(&xqgm.Logic{Op: "not", Args: []xqgm.Expr{null}}); !v.IsNull() {
		t.Errorf("NOT null = %v", v)
	}
	if v := tv(&xqgm.IsNullExpr{E: null}); !v.AsBool() {
		t.Errorf("null IS NULL = %v", v)
	}
	if v := tv(&xqgm.IsNullExpr{E: tru, Neg: true}); !v.AsBool() {
		t.Errorf("true IS NOT NULL = %v", v)
	}
}

func TestPathStepOverConstructedNodes(t *testing.T) {
	prod := xdm.Elem("product", xdm.Attr("name", "CRT 15"),
		xdm.Elem("vendor", xdm.Elem("price", xdm.TextNd("100"))),
		xdm.Elem("vendor", xdm.Elem("price", xdm.TextNd("160"))))
	lit := xqgm.LitOf(xdm.NodeVal(prod))
	env := &xqgm.Env{}
	// product/vendor
	step := &xqgm.PathStep{In: lit, Axis: "child", Name: "vendor"}
	v, err := step.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if v.SeqLen() != 2 {
		t.Errorf("child vendors = %d", v.SeqLen())
	}
	// product/@name
	attr := &xqgm.PathStep{In: lit, Axis: "attribute", Name: "name"}
	av, _ := attr.Eval(env)
	if av.AsString() != "CRT 15" {
		t.Errorf("@name = %v", av)
	}
	// product//price
	desc := &xqgm.PathStep{In: lit, Axis: "descendant", Name: "price"}
	dv, _ := desc.Eval(env)
	if dv.SeqLen() != 2 {
		t.Errorf("descendant prices = %d", dv.SeqLen())
	}
	// product/vendor[price > 120]
	pred := &xqgm.PathStep{In: lit, Axis: "child", Name: "vendor",
		Predicate: &xqgm.Cmp{Op: ">", L: &xqgm.PathStep{In: xqgm.Col(0), Axis: "child", Name: "price"}, R: xqgm.LitOf(xdm.Int(120))}}
	pv, err := pred.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if pv.SeqLen() != 1 {
		t.Errorf("filtered vendors = %d, want 1", pv.SeqLen())
	}
	// count() over the step.
	cnt := &xqgm.Call{Name: "count", Args: []xqgm.Expr{step}}
	cv, _ := cnt.Eval(env)
	if cv.AsInt() != 2 {
		t.Errorf("count = %v", cv)
	}
}

func TestMemoizationSharedSubgraph(t *testing.T) {
	db := paperDB(t)
	vdef, _ := db.Schema().Table("vendor")
	vend := xqgm.NewTable(vdef, xqgm.SrcBase)
	g := xqgm.NewGroupBy(vend, []int{1}, xqgm.Agg{Name: "n", Func: xqgm.AggCount})
	// Same groupby shared by two parents of a union.
	u := xqgm.NewUnion(false, g, g)
	ctx := xqgm.NewEvalContext(db, nil)
	out, err := ctx.Eval(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Errorf("rows = %d, want 6", len(out))
	}
	// The groupby (and the scan beneath it) ran once.
	if db.Stats().FullScans != 1 {
		t.Errorf("full scans = %d, want 1 (memoized)", db.Stats().FullScans)
	}
}
