package xqgm

// Clone deep-copies the operator DAG rooted at root, preserving sharing:
// operators referenced from multiple parents are cloned once. Expressions
// are shared (they are treated as immutable).
func Clone(root *Operator) *Operator {
	return cloneWith(root, map[*Operator]*Operator{}, nil)
}

// CloneMap deep-copies the DAG and also returns the old-to-new operator
// mapping, so callers can relocate references into the clone.
func CloneMap(root *Operator) (*Operator, map[*Operator]*Operator) {
	m := map[*Operator]*Operator{}
	c := cloneWith(root, m, nil)
	return c, m
}

// CloneTransform deep-copies the DAG, applying transform to every cloned
// operator (after its inputs have been cloned). transform may mutate the
// clone it is given; it must not mutate originals.
func CloneTransform(root *Operator, transform func(orig, clone *Operator)) *Operator {
	return cloneWith(root, map[*Operator]*Operator{}, transform)
}

func cloneWith(o *Operator, m map[*Operator]*Operator, transform func(orig, clone *Operator)) *Operator {
	if o == nil {
		return nil
	}
	if c, ok := m[o]; ok {
		return c
	}
	c := *o
	c.Inputs = make([]*Operator, len(o.Inputs))
	for i, in := range o.Inputs {
		c.Inputs[i] = cloneWith(in, m, transform)
	}
	if o.Key != nil {
		// Preserve empty-but-non-nil keys: an empty canonical key means
		// "at most one row", which is distinct from "no key".
		c.Key = make([]int, len(o.Key))
		copy(c.Key, o.Key)
	}
	if o.Projs != nil {
		c.Projs = append([]Proj(nil), o.Projs...)
	}
	if o.On != nil {
		c.On = append([]JoinEq(nil), o.On...)
	}
	if o.GroupCols != nil {
		c.GroupCols = append([]int(nil), o.GroupCols...)
	}
	if o.Aggs != nil {
		c.Aggs = append([]Agg(nil), o.Aggs...)
	}
	if o.OrderCols != nil {
		c.OrderCols = append([]OrderCol(nil), o.OrderCols...)
	}
	if o.TablePK != nil {
		c.TablePK = append([]int(nil), o.TablePK...)
	}
	if o.Names != nil {
		c.Names = append([]string(nil), o.Names...)
	}
	if transform != nil {
		transform(o, &c)
	}
	m[o] = &c
	return &c
}

// WithOldTable returns a clone of the graph in which every Table operator
// reading `table` from the base source reads B_old instead (paper §4.2:
// G_old is G with B replaced by B_old).
func WithOldTable(root *Operator, table string) *Operator {
	return CloneTransform(root, func(_, c *Operator) {
		if c.Type == OpTable && c.Table == table && c.Source == SrcBase {
			c.Source = SrcOld
		}
	})
}

// WithTableSource returns a clone in which Table operators reading `table`
// with source `from` are switched to source `to`.
func WithTableSource(root *Operator, table string, from, to TableSource) *Operator {
	return CloneTransform(root, func(_, c *Operator) {
		if c.Type == OpTable && c.Table == table && c.Source == from {
			c.Source = to
		}
	})
}

// PassthroughProjs builds Proj entries that copy the input's columns
// [from, to) unchanged, preserving their names.
func PassthroughProjs(in *Operator, from, to int) []Proj {
	names := in.OutNames()
	out := make([]Proj, 0, to-from)
	for c := from; c < to; c++ {
		name := ""
		if c < len(names) {
			name = names[c]
		}
		out = append(out, Proj{Name: name, E: Col(c)})
	}
	return out
}

// ProjectCols builds a Project over in that keeps exactly the given column
// indexes (in order), preserving names.
func ProjectCols(in *Operator, cols []int) *Operator {
	names := in.OutNames()
	projs := make([]Proj, len(cols))
	for i, c := range cols {
		name := ""
		if c < len(names) {
			name = names[c]
		}
		projs[i] = Proj{Name: name, E: Col(c)}
	}
	return NewProject(in, projs...)
}
