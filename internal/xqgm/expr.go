package xqgm

import (
	"fmt"
	"strings"

	"quark/internal/xdm"
)

// Expr is a scalar expression evaluated against the tuples of an operator's
// input(s). ColRef.Input selects which input's tuple is referenced (0 for
// unary operators; 0 = left, 1 = right inside join predicates).
type Expr interface {
	Eval(env *Env) (xdm.Value, error)
	String() string
}

// Env carries the input tuples an expression may reference.
type Env struct {
	In [2][]xdm.Value
}

// unaryEnv wraps a single tuple for unary-operator expressions.
func unaryEnv(t []xdm.Value) *Env { return &Env{In: [2][]xdm.Value{t, nil}} }

// ColRef references column Col of input Input.
type ColRef struct {
	Input int
	Col   int
}

// Col is shorthand for a reference to column c of input 0.
func Col(c int) *ColRef { return &ColRef{Input: 0, Col: c} }

// Col2 is shorthand for a reference to column c of input 1.
func Col2(c int) *ColRef { return &ColRef{Input: 1, Col: c} }

// Eval implements Expr.
func (e *ColRef) Eval(env *Env) (xdm.Value, error) {
	t := env.In[e.Input]
	if e.Col < 0 || e.Col >= len(t) {
		return xdm.Null, fmt.Errorf("xqgm: column %d out of range (width %d)", e.Col, len(t))
	}
	return t[e.Col], nil
}

func (e *ColRef) String() string {
	if e.Input == 0 {
		return fmt.Sprintf("$%d", e.Col)
	}
	return fmt.Sprintf("$%d.%d", e.Input, e.Col)
}

// Lit is a literal value.
type Lit struct {
	V xdm.Value
}

// LitOf wraps a value as a literal expression.
func LitOf(v xdm.Value) *Lit { return &Lit{V: v} }

// Eval implements Expr.
func (e *Lit) Eval(*Env) (xdm.Value, error) { return e.V, nil }

func (e *Lit) String() string { return e.V.String() }

// Cmp is a general comparison (paper supports =, !=, <, <=, >, >=).
type Cmp struct {
	Op   string
	L, R Expr
}

// Eval implements Expr.
func (e *Cmp) Eval(env *Env) (xdm.Value, error) {
	l, err := e.L.Eval(env)
	if err != nil {
		return xdm.Null, err
	}
	r, err := e.R.Eval(env)
	if err != nil {
		return xdm.Null, err
	}
	return xdm.CompareOp(e.Op, l, r)
}

func (e *Cmp) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// Arith is a binary arithmetic expression (+, -, *, div, mod).
type Arith struct {
	Op   string
	L, R Expr
}

// Eval implements Expr.
func (e *Arith) Eval(env *Env) (xdm.Value, error) {
	l, err := e.L.Eval(env)
	if err != nil {
		return xdm.Null, err
	}
	r, err := e.R.Eval(env)
	if err != nil {
		return xdm.Null, err
	}
	return xdm.Arith(e.Op, xdm.Atomize(l), xdm.Atomize(r))
}

func (e *Arith) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// Logic is a boolean combinator: "and", "or" over Args, or "not" over
// Args[0]. Three-valued logic: Null operands follow SQL semantics.
type Logic struct {
	Op   string
	Args []Expr
}

// Eval implements Expr.
func (e *Logic) Eval(env *Env) (xdm.Value, error) {
	switch e.Op {
	case "and":
		sawNull := false
		for _, a := range e.Args {
			v, err := a.Eval(env)
			if err != nil {
				return xdm.Null, err
			}
			if v.IsNull() {
				sawNull = true
				continue
			}
			if !v.EffectiveBool() {
				return xdm.False, nil
			}
		}
		if sawNull {
			return xdm.Null, nil
		}
		return xdm.True, nil
	case "or":
		sawNull := false
		for _, a := range e.Args {
			v, err := a.Eval(env)
			if err != nil {
				return xdm.Null, err
			}
			if v.IsNull() {
				sawNull = true
				continue
			}
			if v.EffectiveBool() {
				return xdm.True, nil
			}
		}
		if sawNull {
			return xdm.Null, nil
		}
		return xdm.False, nil
	case "not":
		v, err := e.Args[0].Eval(env)
		if err != nil {
			return xdm.Null, err
		}
		if v.IsNull() {
			return xdm.Null, nil
		}
		return xdm.Bool(!v.EffectiveBool()), nil
	default:
		return xdm.Null, fmt.Errorf("xqgm: unknown logic op %q", e.Op)
	}
}

func (e *Logic) String() string {
	if e.Op == "not" {
		return fmt.Sprintf("not(%s)", e.Args[0])
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return "(" + strings.Join(parts, " "+e.Op+" ") + ")"
}

// And builds a conjunction, flattening nested Ands and dropping nil terms.
func And(args ...Expr) Expr {
	var flat []Expr
	for _, a := range args {
		if a == nil {
			continue
		}
		if l, ok := a.(*Logic); ok && l.Op == "and" {
			flat = append(flat, l.Args...)
			continue
		}
		flat = append(flat, a)
	}
	switch len(flat) {
	case 0:
		return LitOf(xdm.True)
	case 1:
		return flat[0]
	default:
		return &Logic{Op: "and", Args: flat}
	}
}

// Call is a scalar function call. Supported: data, string, count, not,
// concat, abs, empty, exists. count/empty/exists apply to a sequence-valued
// argument (typically an aggXMLFrag column).
type Call struct {
	Name string
	Args []Expr
}

// Eval implements Expr.
func (e *Call) Eval(env *Env) (xdm.Value, error) {
	vals := make([]xdm.Value, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(env)
		if err != nil {
			return xdm.Null, err
		}
		vals[i] = v
	}
	switch e.Name {
	case "data":
		return xdm.Atomize(vals[0]), nil
	case "string":
		return xdm.Str(vals[0].AsString()), nil
	case "count":
		return xdm.Int(int64(vals[0].SeqLen())), nil
	case "empty":
		return xdm.Bool(vals[0].SeqLen() == 0), nil
	case "exists":
		return xdm.Bool(vals[0].SeqLen() > 0), nil
	case "not":
		if vals[0].IsNull() {
			return xdm.Null, nil
		}
		return xdm.Bool(!vals[0].EffectiveBool()), nil
	case "concat":
		var sb strings.Builder
		for _, v := range vals {
			sb.WriteString(v.AsString())
		}
		return xdm.Str(sb.String()), nil
	case "abs":
		v := xdm.Atomize(vals[0])
		if v.IsNull() {
			return xdm.Null, nil
		}
		if v.Kind() == xdm.KindInt {
			i := v.AsInt()
			if i < 0 {
				i = -i
			}
			return xdm.Int(i), nil
		}
		f := v.AsFloat()
		if f < 0 {
			f = -f
		}
		return xdm.Float(f), nil
	case "coalesce":
		for _, v := range vals {
			if !v.IsNull() {
				return v, nil
			}
		}
		return xdm.Null, nil
	case "deep-equal":
		// Deep structural equality, including node values; this is the
		// tagger-level OLD_NODE = NEW_NODE comparison of Appendix E.1.
		return xdm.Bool(xdm.Equal(vals[0], vals[1])), nil
	default:
		return xdm.Null, fmt.Errorf("xqgm: unknown function %q", e.Name)
	}
}

func (e *Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// IsNullExpr tests a value for null (SQL IS NULL).
type IsNullExpr struct {
	E   Expr
	Neg bool
}

// Eval implements Expr.
func (e *IsNullExpr) Eval(env *Env) (xdm.Value, error) {
	v, err := e.E.Eval(env)
	if err != nil {
		return xdm.Null, err
	}
	if e.Neg {
		return xdm.Bool(!v.IsNull()), nil
	}
	return xdm.Bool(v.IsNull()), nil
}

func (e *IsNullExpr) String() string {
	if e.Neg {
		return fmt.Sprintf("(%s IS NOT NULL)", e.E)
	}
	return fmt.Sprintf("(%s IS NULL)", e.E)
}

// AttrSpec is one attribute of an ElemCtor: name={E}.
type AttrSpec struct {
	Name string
	E    Expr
}

// ElemCtor is the XML element construction function embedded in Project
// operators (paper Section 2.1). Children expressions yielding nodes are
// embedded (deep-copied); sequences are spliced; scalars become child
// elements via FieldSpec or text content.
type ElemCtor struct {
	Name     string
	Attrs    []AttrSpec
	Children []Expr
}

// Eval implements Expr.
func (e *ElemCtor) Eval(env *Env) (xdm.Value, error) {
	n := xdm.Elem(e.Name)
	for _, a := range e.Attrs {
		v, err := a.E.Eval(env)
		if err != nil {
			return xdm.Null, err
		}
		n.AppendChild(xdm.Attr(a.Name, v.Lexical()))
	}
	for _, c := range e.Children {
		v, err := c.Eval(env)
		if err != nil {
			return xdm.Null, err
		}
		appendContent(n, v)
	}
	return xdm.NodeVal(n), nil
}

func appendContent(n *xdm.Node, v xdm.Value) {
	switch v.Kind() {
	case xdm.KindNull:
		// empty content
	case xdm.KindNode:
		n.AppendChild(v.AsNode().Copy())
	case xdm.KindSeq:
		for _, e := range v.AsSeq() {
			appendContent(n, e)
		}
	default:
		n.AppendChild(xdm.TextNd(v.Lexical()))
	}
}

func (e *ElemCtor) String() string {
	var sb strings.Builder
	sb.WriteByte('<')
	sb.WriteString(e.Name)
	for _, a := range e.Attrs {
		fmt.Fprintf(&sb, " %s={%s}", a.Name, a.E)
	}
	sb.WriteString(">{")
	for i, c := range e.Children {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.String())
	}
	sb.WriteString("}</")
	sb.WriteString(e.Name)
	sb.WriteByte('>')
	return sb.String()
}

// PathStep navigates within a node-valued expression: child element access,
// attribute access, or descendant search. It implements the XPath axes the
// paper supports (child, attribute, descendant-or-self) over already
// constructed XML values; the compiler uses it when a path cannot be
// composed away into relational columns.
type PathStep struct {
	In        Expr
	Axis      string // "child", "attribute", "descendant"
	Name      string // "*" for any element
	Predicate Expr   // optional, evaluated with the step result as input 0 column 0
}

// Eval implements Expr.
func (e *PathStep) Eval(env *Env) (xdm.Value, error) {
	v, err := e.In.Eval(env)
	if err != nil {
		return xdm.Null, err
	}
	var out []xdm.Value
	for _, item := range v.AsSeq() {
		n := item.AsNode()
		if n == nil {
			continue
		}
		switch e.Axis {
		case "child":
			for _, c := range n.ChildElements(e.Name) {
				out = append(out, xdm.NodeVal(c))
			}
		case "attribute":
			// Attribute values atomize to untyped atomics: parse numerics
			// so comparisons against numbers behave numerically.
			if e.Name == "*" {
				for _, a := range n.Attrs {
					out = append(out, xdm.ParseTyped(a.Text))
				}
			} else if av, ok := n.Attribute(e.Name); ok {
				out = append(out, xdm.ParseTyped(av))
			}
		case "descendant":
			for _, d := range n.Descendants(e.Name, nil) {
				out = append(out, xdm.NodeVal(d))
			}
		default:
			return xdm.Null, fmt.Errorf("xqgm: unsupported axis %q", e.Axis)
		}
	}
	if e.Predicate != nil {
		kept := out[:0]
		for _, item := range out {
			// The predicate sees the step item as input 0 and inherits
			// input 1 (e.g. the constants-table row in grouped trigger
			// plans, enabling arbitrarily nested grouped conditions,
			// paper §5.1).
			penv := &Env{In: [2][]xdm.Value{{item}, env.In[1]}}
			pv, err := e.Predicate.Eval(penv)
			if err != nil {
				return xdm.Null, err
			}
			if !pv.IsNull() && pv.EffectiveBool() {
				kept = append(kept, item)
			}
		}
		out = kept
	}
	switch len(out) {
	case 0:
		return xdm.Null, nil
	case 1:
		return out[0], nil
	default:
		return xdm.Seq(out), nil
	}
}

func (e *PathStep) String() string {
	sep := "/"
	name := e.Name
	switch e.Axis {
	case "attribute":
		name = "@" + name
	case "descendant":
		sep = "//"
	}
	s := fmt.Sprintf("%s%s%s", e.In, sep, name)
	if e.Predicate != nil {
		s += fmt.Sprintf("[%s]", e.Predicate)
	}
	return s
}

// RewriteExpr returns a copy of e with every subexpression passed through
// fn (bottom-up). fn may return the expression unchanged.
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ColRef, *Lit:
		return fn(e)
	case *Cmp:
		return fn(&Cmp{Op: x.Op, L: RewriteExpr(x.L, fn), R: RewriteExpr(x.R, fn)})
	case *Arith:
		return fn(&Arith{Op: x.Op, L: RewriteExpr(x.L, fn), R: RewriteExpr(x.R, fn)})
	case *Logic:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = RewriteExpr(a, fn)
		}
		return fn(&Logic{Op: x.Op, Args: args})
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = RewriteExpr(a, fn)
		}
		return fn(&Call{Name: x.Name, Args: args})
	case *IsNullExpr:
		return fn(&IsNullExpr{E: RewriteExpr(x.E, fn), Neg: x.Neg})
	case *ElemCtor:
		attrs := make([]AttrSpec, len(x.Attrs))
		for i, a := range x.Attrs {
			attrs[i] = AttrSpec{Name: a.Name, E: RewriteExpr(a.E, fn)}
		}
		kids := make([]Expr, len(x.Children))
		for i, c := range x.Children {
			kids[i] = RewriteExpr(c, fn)
		}
		return fn(&ElemCtor{Name: x.Name, Attrs: attrs, Children: kids})
	case *PathStep:
		return fn(&PathStep{In: RewriteExpr(x.In, fn), Axis: x.Axis, Name: x.Name, Predicate: RewriteExpr(x.Predicate, fn)})
	default:
		return fn(e)
	}
}

// ExprCols collects the input-0 column indexes referenced by e.
func ExprCols(e Expr) []int {
	set := map[int]bool{}
	RewriteExpr(e, func(x Expr) Expr {
		if cr, ok := x.(*ColRef); ok && cr.Input == 0 {
			set[cr.Col] = true
		}
		return x
	})
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	return out
}

// ShiftCols returns a copy of e with every input-0 ColRef shifted by delta.
func ShiftCols(e Expr, delta int) Expr {
	return RewriteExpr(e, func(x Expr) Expr {
		if cr, ok := x.(*ColRef); ok && cr.Input == 0 {
			return &ColRef{Input: 0, Col: cr.Col + delta}
		}
		return x
	})
}

// SubstituteCols returns a copy of e with input-0 ColRefs remapped through
// m (old column index -> new column index). Unmapped references are left
// unchanged.
func SubstituteCols(e Expr, m map[int]int) Expr {
	return RewriteExpr(e, func(x Expr) Expr {
		if cr, ok := x.(*ColRef); ok && cr.Input == 0 {
			if nc, ok := m[cr.Col]; ok {
				return &ColRef{Input: 0, Col: nc}
			}
		}
		return x
	})
}
