package xqgm

import (
	"fmt"
	"sort"

	"quark/internal/reldb"
	"quark/internal/xdm"
)

// Tuple is one output row of an operator.
type Tuple []xdm.Value

// Transition carries a statement's transition tables for one base table
// (Δtable = Inserted, ∇table = Deleted).
type Transition struct {
	Inserted []reldb.Row
	Deleted  []reldb.Row
}

// EvalStats counts evaluator work for benchmarks and plan-shape tests.
type EvalStats struct {
	OpsEvaluated   int
	RowsProduced   int
	IndexNLJoins   int
	HashJoins      int
	NestedLoopJoin int
}

// EvalContext supplies the data environment for evaluating a graph: the
// database, the firing statement's transition tables, and result
// memoization so shared DAG nodes are computed once.
type EvalContext struct {
	DB     *reldb.DB
	Deltas map[string]*Transition
	Stats  EvalStats

	memo map[*Operator][]Tuple
	// oldExcl caches, per table, the Δ primary-key set used to mask
	// current rows when probing B_old; delIdx caches ∇ rows bucketed by a
	// probe column. Both depend only on the (fixed) transition tables, and
	// without them every SrcOld index probe would rescan Δ and ∇ — O(|Δ|)
	// per probe, quadratic over a large batched transaction.
	oldExcl map[string]map[string]bool
	delIdx  map[tableCol]map[string][]reldb.Row
}

// tableCol keys the ∇-row cache without per-probe string formatting.
type tableCol struct {
	table string
	col   int
}

// NewEvalContext builds an evaluation context over db. deltas may be nil
// for pure view evaluation.
func NewEvalContext(db *reldb.DB, deltas map[string]*Transition) *EvalContext {
	return &EvalContext{DB: db, Deltas: deltas, memo: map[*Operator][]Tuple{}}
}

// Eval evaluates the graph rooted at o and returns its output tuples.
// Results for shared operators are memoized within this context.
func (ctx *EvalContext) Eval(o *Operator) ([]Tuple, error) {
	if res, ok := ctx.memo[o]; ok {
		return res, nil
	}
	res, err := ctx.eval(o)
	if err != nil {
		return nil, err
	}
	ctx.memo[o] = res
	ctx.Stats.OpsEvaluated++
	ctx.Stats.RowsProduced += len(res)
	return res, nil
}

func (ctx *EvalContext) eval(o *Operator) ([]Tuple, error) {
	switch o.Type {
	case OpTable:
		return ctx.evalTable(o)
	case OpConstants:
		if o.constRows != nil {
			return o.constRows, nil
		}
		out := make([]Tuple, 0, len(o.ConstRows))
		for _, row := range o.ConstRows {
			t := make(Tuple, len(row))
			for i, e := range row {
				v, err := e.Eval(&Env{})
				if err != nil {
					return nil, err
				}
				t[i] = v
			}
			out = append(out, t)
		}
		o.constRows = out
		return out, nil
	case OpSelect:
		in, err := ctx.Eval(o.Inputs[0])
		if err != nil {
			return nil, err
		}
		var out []Tuple
		for _, t := range in {
			v, err := o.Pred.Eval(unaryEnv(t))
			if err != nil {
				return nil, err
			}
			if !v.IsNull() && v.EffectiveBool() {
				out = append(out, t)
			}
		}
		return out, nil
	case OpProject:
		in, err := ctx.Eval(o.Inputs[0])
		if err != nil {
			return nil, err
		}
		out := make([]Tuple, 0, len(in))
		for _, t := range in {
			env := unaryEnv(t)
			nt := make(Tuple, len(o.Projs))
			for i, p := range o.Projs {
				v, err := p.E.Eval(env)
				if err != nil {
					return nil, err
				}
				nt[i] = v
			}
			out = append(out, nt)
		}
		return out, nil
	case OpJoin:
		return ctx.evalJoin(o)
	case OpGroupBy:
		return ctx.evalGroupBy(o)
	case OpUnion:
		return ctx.evalUnion(o)
	case OpOrderBy:
		in, err := ctx.Eval(o.Inputs[0])
		if err != nil {
			return nil, err
		}
		out := append([]Tuple(nil), in...)
		sort.SliceStable(out, func(i, j int) bool {
			for _, oc := range o.OrderCols {
				c := xdm.Compare(out[i][oc.Col], out[j][oc.Col])
				if oc.Desc {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		return out, nil
	case OpUnnest:
		in, err := ctx.Eval(o.Inputs[0])
		if err != nil {
			return nil, err
		}
		var out []Tuple
		for _, t := range in {
			for _, item := range t[o.UnnestCol].AsSeq() {
				nt := append(Tuple(nil), t...)
				nt[o.UnnestCol] = item
				out = append(out, nt)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("xqgm: cannot evaluate operator %s", o.Type)
	}
}

func rowsToTuples(rows []reldb.Row) []Tuple {
	out := make([]Tuple, len(rows))
	for i, r := range rows {
		out[i] = Tuple(r)
	}
	return out
}

func (ctx *EvalContext) transition(table string) *Transition {
	if ctx.Deltas == nil {
		return &Transition{}
	}
	tr, ok := ctx.Deltas[table]
	if !ok {
		return &Transition{}
	}
	return tr
}

func (ctx *EvalContext) evalTable(o *Operator) ([]Tuple, error) {
	tr := ctx.transition(o.Table)
	switch o.Source {
	case SrcBase:
		out := make([]Tuple, 0, ctx.DB.RowCount(o.Table))
		err := ctx.DB.Scan(o.Table, func(r reldb.Row) bool {
			out = append(out, Tuple(r))
			return true
		})
		return out, err
	case SrcDelta:
		return rowsToTuples(tr.Inserted), nil
	case SrcNabla:
		return rowsToTuples(tr.Deleted), nil
	case SrcDeltaPruned:
		return rowsToTuples(pruneRows(tr.Inserted, tr.Deleted)), nil
	case SrcNablaPruned:
		return rowsToTuples(pruneRows(tr.Deleted, tr.Inserted)), nil
	case SrcOld:
		return ctx.evalOldTable(o, tr)
	default:
		return nil, fmt.Errorf("xqgm: unknown table source %d", o.Source)
	}
}

// pruneRows implements the pruned transition tables of Definition 8:
// rows of a that also appear (as full rows) in b are removed.
func pruneRows(a, b []reldb.Row) []reldb.Row {
	if len(a) == 0 || len(b) == 0 {
		return a
	}
	drop := make(map[string]int, len(b))
	for _, r := range b {
		drop[xdm.TupleKey(r)]++
	}
	var out []reldb.Row
	for _, r := range a {
		k := xdm.TupleKey(r)
		if n := drop[k]; n > 0 {
			drop[k] = n - 1
			continue
		}
		out = append(out, r)
	}
	return out
}

// evalOldTable reconstructs B_old = (B EXCEPT ALL ΔB) UNION ALL ∇B (paper
// §4.2). B_old is a bag expression: with a primary key, Δ keys are unique in
// the table so a key set is exact; without one the table may hold duplicate
// rows and Δ must be subtracted with multiplicity, not as a set.
func (ctx *EvalContext) evalOldTable(o *Operator, tr *Transition) ([]Tuple, error) {
	var out []Tuple
	var err error
	if len(o.TablePK) > 0 {
		exclude := ctx.oldExclFor(o.Table, o.TablePK)
		err = ctx.DB.Scan(o.Table, func(r reldb.Row) bool {
			if len(exclude) > 0 && exclude[pkKeyOf(r, o.TablePK)] {
				return true
			}
			out = append(out, Tuple(r))
			return true
		})
	} else {
		remain := make(map[string]int, len(tr.Inserted))
		for _, r := range tr.Inserted {
			remain[xdm.TupleKey(r)]++
		}
		err = ctx.DB.Scan(o.Table, func(r reldb.Row) bool {
			k := xdm.TupleKey(r)
			if n := remain[k]; n > 0 {
				remain[k] = n - 1
				return true
			}
			out = append(out, Tuple(r))
			return true
		})
	}
	if err != nil {
		return nil, err
	}
	for _, r := range tr.Deleted {
		out = append(out, Tuple(r))
	}
	return out, nil
}

// --- joins ---

// basePath describes an input subtree that reads a single base table,
// optionally through a Select and/or a column-preserving Project, so joins
// against it can use reldb's hash indexes.
type basePath struct {
	table    string
	src      TableSource
	residual Expr  // predicate over the base row, or nil
	colMap   []int // output column -> base column (identity when proj == nil)
	names    []string
	pk       []int // base primary-key column indexes (for SrcOld probing)
}

func matchBasePath(o *Operator) *basePath {
	switch o.Type {
	case OpTable:
		// Base tables probe the index directly; B_old is probed as the
		// current table minus Δ-keyed rows plus matching ∇ rows.
		if o.Source != SrcBase && o.Source != SrcOld {
			return nil
		}
		// The indexed B_old probe masks Δ rows with a key set; without a
		// primary key the subtraction needs bag multiplicity, so fall back
		// to evalOldTable's full scan.
		if o.Source == SrcOld && len(o.TablePK) == 0 {
			return nil
		}
		cm := make([]int, o.Width)
		for i := range cm {
			cm[i] = i
		}
		return &basePath{table: o.Table, src: o.Source, colMap: cm, names: o.Names, pk: o.TablePK}
	case OpSelect:
		bp := matchBasePath(o.Inputs[0])
		if bp == nil {
			return nil
		}
		// The select's predicate references its input's columns; remap to
		// base columns.
		m := map[int]int{}
		for out, base := range bp.colMap {
			m[out] = base
		}
		pred := SubstituteCols(o.Pred, m)
		bp2 := *bp
		bp2.residual = And(bp.residual, pred)
		return &bp2
	case OpProject:
		bp := matchBasePath(o.Inputs[0])
		if bp == nil {
			return nil
		}
		cm := make([]int, len(o.Projs))
		for i, p := range o.Projs {
			cr, ok := p.E.(*ColRef)
			if !ok || cr.Input != 0 {
				return nil
			}
			cm[i] = bp.colMap[cr.Col]
		}
		return &basePath{table: bp.table, src: bp.src, residual: bp.residual, colMap: cm, names: o.OutNames(), pk: bp.pk}
	default:
		return nil
	}
}

func (ctx *EvalContext) evalJoin(o *Operator) ([]Tuple, error) {
	l, r := o.Inputs[0], o.Inputs[1]
	lw, rw := l.OutWidth(), r.OutWidth()

	// Index-nested-loop path: inner joins whose right (or left) side is a
	// base-table access path with an index on a join column. This is what
	// keeps per-update trigger cost independent of data size (paper §6.4 /
	// Figure 23): only affected keys are probed.
	if o.JoinKind == JoinInner && len(o.On) > 0 {
		if res, ok, err := ctx.tryIndexJoin(o, l, r, lw, rw, false); ok || err != nil {
			return res, err
		}
		if res, ok, err := ctx.tryIndexJoin(o, r, l, rw, lw, true); ok || err != nil {
			return res, err
		}
	}

	lt, err := ctx.Eval(l)
	if err != nil {
		return nil, err
	}
	rt, err := ctx.Eval(r)
	if err != nil {
		return nil, err
	}
	if len(o.On) == 0 {
		return ctx.nestedLoopJoin(o, lt, rt, lw, rw)
	}
	return ctx.hashJoin(o, lt, rt, lw, rw)
}

// tryIndexJoin attempts an index-nested-loop join with `outer` as the
// driving side and `inner` as the indexed base table. When swapped is true,
// outer corresponds to the operator's right input.
func (ctx *EvalContext) tryIndexJoin(o *Operator, outer, inner *Operator, ow, iw int, swapped bool) ([]Tuple, bool, error) {
	bp := matchBasePath(inner)
	if bp == nil {
		return nil, false, nil
	}
	// Pick the first equi-pair whose inner column is indexed.
	probeIdx := -1
	var probeCol string
	for i, eq := range o.On {
		innerOut := eq.R
		if swapped {
			innerOut = eq.L
		}
		baseCol := bp.colMap[innerOut]
		name := ""
		if td, ok := ctx.DB.Schema().Table(bp.table); ok {
			name = td.Columns[baseCol].Name
		}
		if name != "" && ctx.DB.HasIndex(bp.table, name) {
			probeIdx = i
			probeCol = name
			break
		}
	}
	if probeIdx < 0 {
		return nil, false, nil
	}
	ot, err := ctx.Eval(outer)
	if err != nil {
		return nil, false, err
	}
	// Heuristic: only probe when the driving side is small relative to the
	// table; otherwise a hash join over a single scan is cheaper.
	if n := ctx.DB.RowCount(bp.table); len(ot) > 64 && len(ot)*4 > n {
		return nil, false, nil
	}
	ctx.Stats.IndexNLJoins++
	var out []Tuple
	for _, otup := range ot {
		outerCol := o.On[probeIdx].L
		if swapped {
			outerCol = o.On[probeIdx].R
		}
		probeVal := otup[outerCol]
		if probeVal.IsNull() {
			continue
		}
		err := ctx.lookupPath(bp, probeCol, probeVal, func(r reldb.Row) bool {
			// Apply residual base predicate.
			if bp.residual != nil {
				v, e := bp.residual.Eval(unaryEnv(r))
				if e != nil {
					err = e
					return false
				}
				if v.IsNull() || !v.EffectiveBool() {
					return true
				}
			}
			// Map base row to the inner operator's output shape.
			itup := make(Tuple, len(bp.colMap))
			for i, bc := range bp.colMap {
				itup[i] = r[bc]
			}
			// Verify remaining equi-pairs.
			for i, eq := range o.On {
				if i == probeIdx {
					continue
				}
				lv, rv := otup[eq.L], itup[eq.R]
				if swapped {
					lv, rv = itup[eq.L], otup[eq.R]
				}
				if lv.IsNull() || rv.IsNull() || !xdm.Equal(lv, rv) {
					return true
				}
			}
			var joined Tuple
			if swapped {
				joined = concatTuples(itup, otup)
			} else {
				joined = concatTuples(otup, itup)
			}
			out = append(out, joined)
			return true
		})
		if err != nil {
			return nil, false, err
		}
	}
	// Residual join predicate over the combined row.
	if o.JoinPred != nil {
		kept := out[:0]
		for _, t := range out {
			var lpart, rpart []xdm.Value
			if swapped {
				lpart, rpart = t[:iw], t[iw:]
			} else {
				lpart, rpart = t[:ow], t[ow:]
			}
			v, err := o.JoinPred.Eval(&Env{In: [2][]xdm.Value{lpart, rpart}})
			if err != nil {
				return nil, false, err
			}
			if !v.IsNull() && v.EffectiveBool() {
				kept = append(kept, t)
			}
		}
		out = kept
	}
	return out, true, nil
}

func pkKeyOf(r reldb.Row, pk []int) string {
	if len(pk) == 0 {
		return xdm.TupleKey(r)
	}
	ks := make([]xdm.Value, len(pk))
	for i, c := range pk {
		ks[i] = r[c]
	}
	return xdm.TupleKey(ks)
}

// oldExclFor returns (building once per context) the Δ primary-key set of
// a table, used to mask already-updated rows out of B_old probes.
func (ctx *EvalContext) oldExclFor(table string, pk []int) map[string]bool {
	if m, ok := ctx.oldExcl[table]; ok {
		return m
	}
	tr := ctx.transition(table)
	m := make(map[string]bool, len(tr.Inserted))
	for _, r := range tr.Inserted {
		m[pkKeyOf(r, pk)] = true
	}
	if ctx.oldExcl == nil {
		ctx.oldExcl = map[string]map[string]bool{}
	}
	ctx.oldExcl[table] = m
	return m
}

// deletedByCol returns (building once per context) the table's ∇ rows
// bucketed by the given column's value key.
func (ctx *EvalContext) deletedByCol(table string, col int) map[string][]reldb.Row {
	key := tableCol{table, col}
	if m, ok := ctx.delIdx[key]; ok {
		return m
	}
	tr := ctx.transition(table)
	m := make(map[string][]reldb.Row, len(tr.Deleted))
	for _, r := range tr.Deleted {
		k := r[col].Key()
		m[k] = append(m[k], r)
	}
	if ctx.delIdx == nil {
		ctx.delIdx = map[tableCol]map[string][]reldb.Row{}
	}
	ctx.delIdx[key] = m
	return m
}

// lookupPath probes a base-path by index. For SrcOld it reconstructs the
// pre-update row set on the fly: current rows whose primary key is not in
// ΔB, plus the matching ∇B rows (paper §4.2's B_old, evaluated per probe
// instead of materialized).
func (ctx *EvalContext) lookupPath(bp *basePath, probeCol string, probeVal xdm.Value, fn func(reldb.Row) bool) error {
	if bp.src == SrcBase {
		return ctx.DB.Lookup(bp.table, probeCol, probeVal, fn)
	}
	excl := ctx.oldExclFor(bp.table, bp.pk)
	stop := false
	err := ctx.DB.Lookup(bp.table, probeCol, probeVal, func(r reldb.Row) bool {
		if len(excl) > 0 && excl[pkKeyOf(r, bp.pk)] {
			return true
		}
		if !fn(r) {
			stop = true
			return false
		}
		return true
	})
	if err != nil || stop {
		return err
	}
	probeIdx := -1
	if td, ok := ctx.DB.Schema().Table(bp.table); ok {
		probeIdx = td.ColIndex(probeCol)
	}
	if probeIdx < 0 {
		return fmt.Errorf("xqgm: unknown probe column %q on %s", probeCol, bp.table)
	}
	for _, r := range ctx.deletedByCol(bp.table, probeIdx)[probeVal.Key()] {
		if !fn(r) {
			return nil
		}
	}
	return nil
}

func concatTuples(a, b Tuple) Tuple {
	out := make(Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

func nullTuple(w int) Tuple {
	out := make(Tuple, w)
	for i := range out {
		out[i] = xdm.Null
	}
	return out
}

func (ctx *EvalContext) hashJoin(o *Operator, lt, rt []Tuple, lw, rw int) ([]Tuple, error) {
	ctx.Stats.HashJoins++
	// Build on the right side; builds over Constants inputs (the grouped
	// trigger plans' constants tables) are cached on the operator since
	// their rows never change.
	var build map[string][]Tuple
	var cacheInto *Operator
	if r := o.Inputs[1]; r.Type == OpConstants {
		sig := fmt.Sprint(o.On)
		if r.constBuild == nil {
			r.constBuild = map[string]*constBuildEntry{}
		}
		if e, ok := r.constBuild[sig]; ok {
			build = e.byKey
		} else {
			cacheInto = r
		}
	}
	rightKey := func(t Tuple) (string, bool) {
		ks := make([]xdm.Value, len(o.On))
		for i, eq := range o.On {
			v := t[eq.R]
			if v.IsNull() {
				return "", false
			}
			ks[i] = v
		}
		return xdm.TupleKey(ks), true
	}
	leftKey := func(t Tuple) (string, bool) {
		ks := make([]xdm.Value, len(o.On))
		for i, eq := range o.On {
			v := t[eq.L]
			if v.IsNull() {
				return "", false
			}
			ks[i] = v
		}
		return xdm.TupleKey(ks), true
	}
	if build == nil {
		build = make(map[string][]Tuple, len(rt))
		for _, t := range rt {
			if k, ok := rightKey(t); ok {
				build[k] = append(build[k], t)
			}
		}
		if cacheInto != nil {
			cacheInto.constBuild[fmt.Sprint(o.On)] = &constBuildEntry{byKey: build}
		}
	}
	matchPred := func(l, r Tuple) (bool, error) {
		if o.JoinPred == nil {
			return true, nil
		}
		v, err := o.JoinPred.Eval(&Env{In: [2][]xdm.Value{l, r}})
		if err != nil {
			return false, err
		}
		return !v.IsNull() && v.EffectiveBool(), nil
	}
	var out []Tuple
	switch o.JoinKind {
	case JoinInner, JoinLeftOuter, JoinLeftAnti:
		for _, lt1 := range lt {
			matched := false
			if k, ok := leftKey(lt1); ok {
				for _, rt1 := range build[k] {
					okp, err := matchPred(lt1, rt1)
					if err != nil {
						return nil, err
					}
					if !okp {
						continue
					}
					matched = true
					if o.JoinKind != JoinLeftAnti {
						out = append(out, concatTuples(lt1, rt1))
					}
				}
			}
			if !matched {
				switch o.JoinKind {
				case JoinLeftOuter, JoinLeftAnti:
					out = append(out, concatTuples(lt1, nullTuple(rw)))
				}
			}
		}
	case JoinRightAnti:
		// Build on the left side instead.
		lbuild := make(map[string][]Tuple, len(lt))
		for _, t := range lt {
			if k, ok := leftKey(t); ok {
				lbuild[k] = append(lbuild[k], t)
			}
		}
		for _, rt1 := range rt {
			matched := false
			if k, ok := rightKey(rt1); ok {
				for _, lt1 := range lbuild[k] {
					okp, err := matchPred(lt1, rt1)
					if err != nil {
						return nil, err
					}
					if okp {
						matched = true
						break
					}
				}
			}
			if !matched {
				out = append(out, concatTuples(nullTuple(lw), rt1))
			}
		}
	}
	return out, nil
}

func (ctx *EvalContext) nestedLoopJoin(o *Operator, lt, rt []Tuple, lw, rw int) ([]Tuple, error) {
	ctx.Stats.NestedLoopJoin++
	matchPred := func(l, r Tuple) (bool, error) {
		if o.JoinPred == nil {
			return true, nil
		}
		v, err := o.JoinPred.Eval(&Env{In: [2][]xdm.Value{l, r}})
		if err != nil {
			return false, err
		}
		return !v.IsNull() && v.EffectiveBool(), nil
	}
	var out []Tuple
	switch o.JoinKind {
	case JoinInner, JoinLeftOuter, JoinLeftAnti:
		for _, lt1 := range lt {
			matched := false
			for _, rt1 := range rt {
				okp, err := matchPred(lt1, rt1)
				if err != nil {
					return nil, err
				}
				if !okp {
					continue
				}
				matched = true
				if o.JoinKind != JoinLeftAnti {
					out = append(out, concatTuples(lt1, rt1))
				}
			}
			if !matched && (o.JoinKind == JoinLeftOuter || o.JoinKind == JoinLeftAnti) {
				out = append(out, concatTuples(lt1, nullTuple(rw)))
			}
		}
	case JoinRightAnti:
		for _, rt1 := range rt {
			matched := false
			for _, lt1 := range lt {
				okp, err := matchPred(lt1, rt1)
				if err != nil {
					return nil, err
				}
				if okp {
					matched = true
					break
				}
			}
			if !matched {
				out = append(out, concatTuples(nullTuple(lw), rt1))
			}
		}
	}
	return out, nil
}

// --- group by ---

func (ctx *EvalContext) evalGroupBy(o *Operator) ([]Tuple, error) {
	in, err := ctx.Eval(o.Inputs[0])
	if err != nil {
		return nil, err
	}
	inKey := o.Inputs[0].Key

	type group struct {
		keyVals []xdm.Value
		rows    []Tuple
	}
	groups := map[string]*group{}
	var order []string
	for _, t := range in {
		ks := make([]xdm.Value, len(o.GroupCols))
		for i, c := range o.GroupCols {
			ks[i] = t[c]
		}
		k := xdm.TupleKey(ks)
		g, ok := groups[k]
		if !ok {
			g = &group{keyVals: ks}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, t)
	}
	// Global aggregate over empty input yields one row (SQL semantics);
	// grouped aggregate over empty input yields none.
	if len(o.GroupCols) == 0 && len(order) == 0 {
		k := xdm.TupleKey(nil)
		groups[k] = &group{}
		order = append(order, k)
	}
	sort.Strings(order) // deterministic group order
	out := make([]Tuple, 0, len(order))
	for _, k := range order {
		g := groups[k]
		// Deterministic intra-group order: sort by the input's canonical
		// key when available, else by full tuple. This fixes the document
		// order of aggXMLFrag sequences (XQuery for-loop order over
		// relational data is implementation-defined; we pick key order).
		sortTuples(g.rows, inKey)
		t := make(Tuple, 0, len(o.GroupCols)+len(o.Aggs))
		t = append(t, g.keyVals...)
		for _, a := range o.Aggs {
			v, err := evalAgg(a, g.rows)
			if err != nil {
				return nil, err
			}
			t = append(t, v)
		}
		out = append(out, t)
	}
	return out, nil
}

func sortTuples(rows []Tuple, key []int) {
	if len(rows) < 2 {
		return
	}
	cmp := func(a, b Tuple) int {
		if key != nil {
			for _, c := range key {
				if r := xdm.Compare(a[c], b[c]); r != 0 {
					return r
				}
			}
			return 0
		}
		for i := range a {
			if r := xdm.Compare(a[i], b[i]); r != 0 {
				return r
			}
		}
		return 0
	}
	sort.SliceStable(rows, func(i, j int) bool { return cmp(rows[i], rows[j]) < 0 })
}

func evalAgg(a Agg, rows []Tuple) (xdm.Value, error) {
	switch a.Func {
	case AggCount:
		if a.Arg == nil {
			return xdm.Int(int64(len(rows))), nil
		}
		n := int64(0)
		for _, t := range rows {
			v, err := a.Arg.Eval(unaryEnv(t))
			if err != nil {
				return xdm.Null, err
			}
			if !v.IsNull() {
				n += int64(v.SeqLen())
			}
		}
		return xdm.Int(n), nil
	case AggSum, AggAvg:
		sum := 0.0
		allInt := true
		isum := int64(0)
		n := 0
		for _, t := range rows {
			v, err := a.Arg.Eval(unaryEnv(t))
			if err != nil {
				return xdm.Null, err
			}
			v = xdm.Atomize(v)
			if v.IsNull() {
				continue
			}
			if v.Kind() == xdm.KindInt {
				isum += v.AsInt()
			} else {
				allInt = false
			}
			sum += v.AsFloat()
			n++
		}
		if n == 0 {
			return xdm.Null, nil
		}
		if a.Func == AggAvg {
			return xdm.Float(sum / float64(n)), nil
		}
		if allInt {
			return xdm.Int(isum), nil
		}
		return xdm.Float(sum), nil
	case AggMin, AggMax:
		var best xdm.Value
		has := false
		for _, t := range rows {
			v, err := a.Arg.Eval(unaryEnv(t))
			if err != nil {
				return xdm.Null, err
			}
			v = xdm.Atomize(v)
			if v.IsNull() {
				continue
			}
			if !has {
				best, has = v, true
				continue
			}
			c := xdm.Compare(v, best)
			if (a.Func == AggMin && c < 0) || (a.Func == AggMax && c > 0) {
				best = v
			}
		}
		if !has {
			return xdm.Null, nil
		}
		return best, nil
	case AggXMLFrag:
		var items []xdm.Value
		for _, t := range rows {
			v, err := a.Arg.Eval(unaryEnv(t))
			if err != nil {
				return xdm.Null, err
			}
			if v.IsNull() {
				continue
			}
			items = append(items, v.AsSeq()...)
		}
		return xdm.Seq(items), nil
	default:
		return xdm.Null, fmt.Errorf("xqgm: unknown aggregate %v", a.Func)
	}
}

// --- union ---

func (ctx *EvalContext) evalUnion(o *Operator) ([]Tuple, error) {
	var out []Tuple
	var seen map[string]bool
	if o.Distinct {
		seen = map[string]bool{}
	}
	for _, in := range o.Inputs {
		ts, err := ctx.Eval(in)
		if err != nil {
			return nil, err
		}
		for _, t := range ts {
			if o.Distinct {
				k := xdm.TupleKey(t)
				if seen[k] {
					continue
				}
				seen[k] = true
			}
			out = append(out, t)
		}
	}
	return out, nil
}

// SortedEval evaluates o and returns the tuples sorted by the given
// columns (all columns when cols is nil) for deterministic comparison in
// tests and oracles.
func (ctx *EvalContext) SortedEval(o *Operator, cols []int) ([]Tuple, error) {
	ts, err := ctx.Eval(o)
	if err != nil {
		return nil, err
	}
	out := append([]Tuple(nil), ts...)
	sortTuples(out, cols)
	return out, nil
}
