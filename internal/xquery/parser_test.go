package xquery

import (
	"strings"
	"testing"

	"quark/internal/xdm"
)

// catalogSrc is the paper's Figure 3 view body.
const catalogSrc = `
<catalog>
{for $prodname in distinct(view('default')/product/row/pname)
 let $products := view('default')/product/row[./pname = $prodname]
 let $vendors := view('default')/vendor/row[./pid = $products/pid]
 where count($vendors) >= 2
 return <product name={$prodname}>
   { for $vendor in $vendors
     return <vendor>
       {$vendor/*}
     </vendor>}
 </product>}
</catalog>`

func TestParseCatalogView(t *testing.T) {
	e, err := Parse(catalogSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctor, ok := e.(*ElemCtor)
	if !ok || ctor.Name != "catalog" {
		t.Fatalf("root = %T %v", e, String(e))
	}
	if len(ctor.Content) != 1 {
		t.Fatalf("catalog content = %d", len(ctor.Content))
	}
	fl, ok := ctor.Content[0].(*FLWOR)
	if !ok {
		t.Fatalf("content = %T", ctor.Content[0])
	}
	if len(fl.Clauses) != 3 {
		t.Fatalf("clauses = %d, want 3 (for, let, let)", len(fl.Clauses))
	}
	fc, ok := fl.Clauses[0].(ForClause)
	if !ok || fc.Var != "prodname" {
		t.Errorf("clause 0 = %v", fl.Clauses[0])
	}
	if _, ok := fc.Seq.(*FnCall); !ok {
		t.Errorf("for seq = %T, want distinct(...)", fc.Seq)
	}
	lc, ok := fl.Clauses[1].(LetClause)
	if !ok || lc.Var != "products" {
		t.Errorf("clause 1 = %v", fl.Clauses[1])
	}
	// where count($vendors) >= 2
	cmp, ok := fl.Where.(*Cmp)
	if !ok || cmp.Op != ">=" {
		t.Fatalf("where = %v", String(fl.Where))
	}
	cnt, ok := cmp.L.(*FnCall)
	if !ok || cnt.Name != "count" {
		t.Errorf("where lhs = %v", String(cmp.L))
	}
	// return <product name={$prodname}> with a nested FLWOR.
	prod, ok := fl.Return.(*ElemCtor)
	if !ok || prod.Name != "product" {
		t.Fatalf("return = %v", String(fl.Return))
	}
	if len(prod.Attrs) != 1 || prod.Attrs[0].Name != "name" {
		t.Errorf("product attrs = %v", prod.Attrs)
	}
	if _, ok := prod.Attrs[0].Val.(*VarRef); !ok {
		t.Errorf("name attr = %T", prod.Attrs[0].Val)
	}
	inner, ok := prod.Content[0].(*FLWOR)
	if !ok {
		t.Fatalf("product content = %T", prod.Content[0])
	}
	vend, ok := inner.Return.(*ElemCtor)
	if !ok || vend.Name != "vendor" {
		t.Fatalf("inner return = %v", String(inner.Return))
	}
	// {$vendor/*}
	pth, ok := vend.Content[0].(*Path)
	if !ok || len(pth.Steps) != 1 || pth.Steps[0].Name != "*" {
		t.Errorf("vendor content = %v", String(vend.Content[0]))
	}
}

func TestParsePathsAndPredicates(t *testing.T) {
	e, err := Parse(`view('default')/vendor/row[./pid = 'P1'][./price < 100]/price`)
	if err != nil {
		t.Fatal(err)
	}
	p := e.(*Path)
	if _, ok := p.Base.(*ViewRef); !ok {
		t.Errorf("base = %T", p.Base)
	}
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if len(p.Steps[1].Preds) != 2 {
		t.Errorf("row preds = %d", len(p.Steps[1].Preds))
	}
	// Descendant + attribute axes.
	e, err = Parse(`NEW_NODE//vendor/@vid`)
	if err != nil {
		t.Fatal(err)
	}
	p = e.(*Path)
	if p.Steps[0].Axis != "descendant" || p.Steps[1].Axis != "attribute" {
		t.Errorf("axes = %v %v", p.Steps[0].Axis, p.Steps[1].Axis)
	}
	nr, ok := p.Base.(*NodeRef)
	if !ok || nr.Old {
		t.Errorf("base = %v", p.Base)
	}
}

func TestParseOperatorsAndPrecedence(t *testing.T) {
	e, err := Parse(`1 + 2 * 3 = 7 and not(2 > 3) or $x = 'a'`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := e.(*Logic)
	if !ok || or.Op != "or" || len(or.Args) != 2 {
		t.Fatalf("top = %v", String(e))
	}
	and, ok := or.Args[0].(*Logic)
	if !ok || and.Op != "and" {
		t.Fatalf("lhs = %v", String(or.Args[0]))
	}
	cmp := and.Args[0].(*Cmp)
	add := cmp.L.(*Arith)
	if add.Op != "+" {
		t.Errorf("expected + at top of arith, got %s", add.Op)
	}
	if mul := add.R.(*Arith); mul.Op != "*" {
		t.Errorf("expected * to bind tighter")
	}
}

func TestParseQuantified(t *testing.T) {
	e, err := Parse(`some $v in NEW_NODE/vendor satisfies $v/price < 100`)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := e.(*Quantified)
	if !ok || q.Every || q.Var != "v" {
		t.Fatalf("quantified = %v", String(e))
	}
	e, err = Parse(`every $v in $s satisfies $v > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if q := e.(*Quantified); !q.Every {
		t.Error("every not recognized")
	}
}

func TestParseIf(t *testing.T) {
	e, err := Parse(`if ($x > 1) then 'big' else 'small'`)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := e.(*IfExpr)
	if !ok {
		t.Fatalf("= %T", e)
	}
	if _, ok := f.Then.(*Lit); !ok {
		t.Error("then branch")
	}
}

func TestParseConstructorForms(t *testing.T) {
	// Self-closing, literal attribute, nested text.
	e, err := Parse(`<a x="1" y={$v}><b/>{$w}text</a>`)
	if err != nil {
		t.Fatal(err)
	}
	a := e.(*ElemCtor)
	if len(a.Attrs) != 2 {
		t.Fatalf("attrs = %d", len(a.Attrs))
	}
	if l, ok := a.Attrs[0].Val.(*Lit); !ok || l.V.AsString() != "1" {
		t.Errorf("x attr = %v", a.Attrs[0].Val)
	}
	if len(a.Content) != 3 {
		t.Fatalf("content = %d", len(a.Content))
	}
	if b := a.Content[0].(*ElemCtor); b.Name != "b" || len(b.Content) != 0 {
		t.Errorf("b = %v", String(a.Content[0]))
	}
	if l, ok := a.Content[2].(*Lit); !ok || l.V.AsString() != "text" {
		t.Errorf("text = %v", String(a.Content[2]))
	}
	// Attribute with enclosed-in-quotes form name="{expr}".
	e, err = Parse(`<a x="{$v}"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*ElemCtor).Attrs[0].Val.(*VarRef); !ok {
		t.Error("quoted enclosed attr not parsed as expression")
	}
}

func TestParseComments(t *testing.T) {
	e, err := Parse(`(: ignore me :) 1 + (: and me :) 2`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*Arith); !ok {
		t.Errorf("= %v", String(e))
	}
}

func TestParseDoubledQuoteStrings(t *testing.T) {
	e, err := Parse(`view(''default'')/product/row`)
	if err != nil {
		t.Fatal(err)
	}
	p := e.(*Path)
	if vr := p.Base.(*ViewRef); vr.Name != "default" {
		t.Errorf("view name = %q", vr.Name)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`for $x return 1`,
		`for $x in y`,
		`let $x = 1 return $x`,
		`1 +`,
		`<a>`,
		`<a></b>`,
		`{unclosed`,
		`view(42)/x`,
		`some $v in $s`,
		`'unterminated`,
		`$`,
		`1 2`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestASTStringRoundStable(t *testing.T) {
	e, err := Parse(catalogSrc)
	if err != nil {
		t.Fatal(err)
	}
	s1 := String(e)
	if !strings.Contains(s1, "count(") || !strings.Contains(s1, "for $vendor") {
		t.Errorf("ast string: %s", s1)
	}
	// Numbers parse typed.
	e2, _ := Parse(`1.5`)
	if l := e2.(*Lit); !xdm.Equal(l.V, xdm.Float(1.5)) {
		t.Error("typed number literal")
	}
}
