package xquery

import (
	"fmt"
	"strings"

	"quark/internal/xdm"
)

// Expr is an XQuery AST node.
type Expr interface {
	astString() string
}

// Lit is a literal value.
type Lit struct {
	V xdm.Value
}

func (e *Lit) astString() string { return e.V.String() }

// VarRef references a bound variable.
type VarRef struct {
	Name string
}

func (e *VarRef) astString() string { return "$" + e.Name }

// ViewRef is view('name') — the root of a path over a registered view.
type ViewRef struct {
	Name string
}

func (e *ViewRef) astString() string { return fmt.Sprintf("view(%q)", e.Name) }

// NodeRef references the trigger's OLD_NODE / NEW_NODE binding.
type NodeRef struct {
	Old bool
}

func (e *NodeRef) astString() string {
	if e.Old {
		return "OLD_NODE"
	}
	return "NEW_NODE"
}

// Step is one XPath step.
type Step struct {
	Axis  string // "child", "descendant", "attribute", "self"
	Name  string // "*" matches any element
	Preds []Expr // predicates, evaluated with "." bound to the step item
}

func (s Step) String() string {
	var sb strings.Builder
	switch s.Axis {
	case "descendant":
		sb.WriteString("//")
	case "attribute":
		sb.WriteString("/@")
	case "self":
		sb.WriteString("/.")
	default:
		sb.WriteString("/")
	}
	if s.Axis != "self" {
		sb.WriteString(s.Name)
	}
	for _, p := range s.Preds {
		sb.WriteString("[")
		sb.WriteString(p.astString())
		sb.WriteString("]")
	}
	return sb.String()
}

// Path is a base expression followed by steps.
type Path struct {
	Base  Expr
	Steps []Step
}

func (e *Path) astString() string {
	var sb strings.Builder
	sb.WriteString(e.Base.astString())
	for _, s := range e.Steps {
		sb.WriteString(s.String())
	}
	return sb.String()
}

// ContextItem is "." inside a predicate.
type ContextItem struct{}

func (e *ContextItem) astString() string { return "." }

// Cmp is a general comparison.
type Cmp struct {
	Op   string
	L, R Expr
}

func (e *Cmp) astString() string {
	return fmt.Sprintf("(%s %s %s)", e.L.astString(), e.Op, e.R.astString())
}

// Arith is an arithmetic expression (+ - * div mod).
type Arith struct {
	Op   string
	L, R Expr
}

func (e *Arith) astString() string {
	return fmt.Sprintf("(%s %s %s)", e.L.astString(), e.Op, e.R.astString())
}

// Logic is and/or/not.
type Logic struct {
	Op   string
	Args []Expr
}

func (e *Logic) astString() string {
	if e.Op == "not" {
		return "not(" + e.Args[0].astString() + ")"
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.astString()
	}
	return "(" + strings.Join(parts, " "+e.Op+" ") + ")"
}

// FnCall is a function call (count, min, max, sum, avg, distinct, data,
// string, not, empty, exists, concat).
type FnCall struct {
	Name string
	Args []Expr
}

func (e *FnCall) astString() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.astString()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Quantified is some/every $v in seq satisfies pred.
type Quantified struct {
	Every bool
	Var   string
	Seq   Expr
	Sat   Expr
}

func (e *Quantified) astString() string {
	kw := "some"
	if e.Every {
		kw = "every"
	}
	return fmt.Sprintf("%s $%s in %s satisfies %s", kw, e.Var, e.Seq.astString(), e.Sat.astString())
}

// IfExpr is if (cond) then a else b.
type IfExpr struct {
	Cond, Then, Else Expr
}

func (e *IfExpr) astString() string {
	return fmt.Sprintf("if (%s) then %s else %s", e.Cond.astString(), e.Then.astString(), e.Else.astString())
}

// ForClause / LetClause are FLWOR clauses.
type ForClause struct {
	Var string
	Seq Expr
}

// LetClause binds a variable to an expression.
type LetClause struct {
	Var string
	Seq Expr
}

// FLWOR is a for/let/where/return expression.
type FLWOR struct {
	Fors    []ForClause // interleaved order preserved in Clauses
	Clauses []any       // ForClause | LetClause, in source order
	Where   Expr
	Return  Expr
}

func (e *FLWOR) astString() string {
	var sb strings.Builder
	for _, c := range e.Clauses {
		switch c := c.(type) {
		case ForClause:
			fmt.Fprintf(&sb, "for $%s in %s ", c.Var, c.Seq.astString())
		case LetClause:
			fmt.Fprintf(&sb, "let $%s := %s ", c.Var, c.Seq.astString())
		}
	}
	if e.Where != nil {
		fmt.Fprintf(&sb, "where %s ", e.Where.astString())
	}
	fmt.Fprintf(&sb, "return %s", e.Return.astString())
	return sb.String()
}

// AttrCtor is one attribute of an element constructor: name="literal" or
// name={expr}.
type AttrCtor struct {
	Name string
	Val  Expr
}

// ElemCtor is a direct element constructor. Content items are text
// literals (Lit of string) or enclosed expressions.
type ElemCtor struct {
	Name    string
	Attrs   []AttrCtor
	Content []Expr
}

func (e *ElemCtor) astString() string {
	var sb strings.Builder
	sb.WriteString("<")
	sb.WriteString(e.Name)
	for _, a := range e.Attrs {
		fmt.Fprintf(&sb, " %s={%s}", a.Name, a.Val.astString())
	}
	sb.WriteString(">")
	for _, c := range e.Content {
		fmt.Fprintf(&sb, "{%s}", c.astString())
	}
	sb.WriteString("</" + e.Name + ">")
	return sb.String()
}

// String renders any AST node.
func String(e Expr) string {
	if e == nil {
		return "<nil>"
	}
	return e.astString()
}
