package xquery

import (
	"fmt"
	"strings"

	"quark/internal/xdm"
)

// Parser is a recursive-descent parser for the supported XQuery subset.
type Parser struct {
	lx  *Lexer
	tok Token
}

// Parse parses a complete expression.
func Parse(src string) (Expr, error) {
	p := &Parser{lx: NewLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, fmt.Errorf("xquery: unexpected %s at offset %d", p.tok, p.tok.Pos)
	}
	return e, nil
}

// NewParserAt creates a parser whose input starts mid-string; used by the
// trigger DDL parser to parse embedded expressions.
func NewParserAt(lx *Lexer, tok Token) *Parser { return &Parser{lx: lx, tok: tok} }

// Current returns the current lookahead token.
func (p *Parser) Current() Token { return p.tok }

// ParseExprPublic parses one expression and leaves the lookahead at the
// following token.
func (p *Parser) ParseExprPublic() (Expr, error) { return p.parseExpr() }

func (p *Parser) advance() error {
	t, err := p.lx.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) expectSymbol(sym string) error {
	if p.tok.Kind != TokSymbol || p.tok.Text != sym {
		return fmt.Errorf("xquery: expected %q, found %s at offset %d", sym, p.tok, p.tok.Pos)
	}
	return p.advance()
}

func (p *Parser) isIdent(kw string) bool {
	return p.tok.Kind == TokIdent && p.tok.Text == kw
}

func (p *Parser) isSymbol(sym string) bool {
	return p.tok.Kind == TokSymbol && p.tok.Text == sym
}

func (p *Parser) parseExpr() (Expr, error) {
	switch {
	case p.isIdent("for"), p.isIdent("let"):
		return p.parseFLWOR()
	case p.isIdent("some"), p.isIdent("every"):
		return p.parseQuantified()
	case p.isIdent("if"):
		return p.parseIf()
	default:
		return p.parseOr()
	}
}

func (p *Parser) parseFLWOR() (Expr, error) {
	f := &FLWOR{}
	for {
		switch {
		case p.isIdent("for"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				if p.tok.Kind != TokVar {
					return nil, fmt.Errorf("xquery: expected $var in for at offset %d", p.tok.Pos)
				}
				v := p.tok.Text
				if err := p.advance(); err != nil {
					return nil, err
				}
				if !p.isIdent("in") {
					return nil, fmt.Errorf("xquery: expected 'in' at offset %d", p.tok.Pos)
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
				seq, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc := ForClause{Var: v, Seq: seq}
				f.Fors = append(f.Fors, fc)
				f.Clauses = append(f.Clauses, fc)
				if p.isSymbol(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
		case p.isIdent("let"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			for {
				if p.tok.Kind != TokVar {
					return nil, fmt.Errorf("xquery: expected $var in let at offset %d", p.tok.Pos)
				}
				v := p.tok.Text
				if err := p.advance(); err != nil {
					return nil, err
				}
				if !p.isSymbol(":=") {
					return nil, fmt.Errorf("xquery: expected ':=' at offset %d", p.tok.Pos)
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
				seq, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				f.Clauses = append(f.Clauses, LetClause{Var: v, Seq: seq})
				if p.isSymbol(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
		default:
			goto clausesDone
		}
	}
clausesDone:
	if len(f.Clauses) == 0 {
		return nil, fmt.Errorf("xquery: FLWOR without clauses at offset %d", p.tok.Pos)
	}
	if p.isIdent("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Where = w
	}
	if !p.isIdent("return") {
		return nil, fmt.Errorf("xquery: expected 'return' at offset %d", p.tok.Pos)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	f.Return = r
	return f, nil
}

func (p *Parser) parseQuantified() (Expr, error) {
	every := p.isIdent("every")
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokVar {
		return nil, fmt.Errorf("xquery: expected $var at offset %d", p.tok.Pos)
	}
	v := p.tok.Text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if !p.isIdent("in") {
		return nil, fmt.Errorf("xquery: expected 'in' at offset %d", p.tok.Pos)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	seq, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.isIdent("satisfies") {
		return nil, fmt.Errorf("xquery: expected 'satisfies' at offset %d", p.tok.Pos)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	sat, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Quantified{Every: every, Var: v, Seq: seq, Sat: sat}, nil
}

func (p *Parser) parseIf() (Expr, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if !p.isIdent("then") {
		return nil, fmt.Errorf("xquery: expected 'then' at offset %d", p.tok.Pos)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	th, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.isIdent("else") {
		return nil, fmt.Errorf("xquery: expected 'else' at offset %d", p.tok.Pos)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	el, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &IfExpr{Cond: cond, Then: th, Else: el}, nil
}

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	args := []Expr{l}
	for p.isIdent("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		args = append(args, r)
	}
	if len(args) == 1 {
		return l, nil
	}
	return &Logic{Op: "or", Args: args}, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	args := []Expr{l}
	for p.isIdent("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		args = append(args, r)
	}
	if len(args) == 1 {
		return l, nil
	}
	return &Logic{Op: "and", Args: args}, nil
}

var cmpOps = map[string]bool{"=": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == TokSymbol && cmpOps[p.tok.Text] {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Cmp{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.isSymbol("+") || p.isSymbol("-") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Arith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isSymbol("*") || p.isIdent("div") || p.isIdent("mod") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Arith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.isSymbol("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return &Arith{Op: "-", L: &Lit{V: xdm.Int(0)}, R: e}, nil
	}
	return p.parsePath()
}

func (p *Parser) parsePath() (Expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	var steps []Step
	for p.isSymbol("/") || p.isSymbol("//") {
		axis := "child"
		if p.tok.Text == "//" {
			axis = "descendant"
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var name string
		switch {
		case p.isSymbol("@"):
			axis = "attribute"
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Kind != TokIdent && !p.isSymbol("*") {
				return nil, fmt.Errorf("xquery: expected attribute name at offset %d", p.tok.Pos)
			}
			name = p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.isSymbol("*"):
			name = "*"
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.isSymbol("."):
			axis = "self"
			name = "."
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.tok.Kind == TokIdent:
			name = p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("xquery: expected step name at offset %d", p.tok.Pos)
		}
		st := Step{Axis: axis, Name: name}
		for p.isSymbol("[") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			pe, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol("]"); err != nil {
				return nil, err
			}
			st.Preds = append(st.Preds, pe)
		}
		steps = append(steps, st)
	}
	if len(steps) == 0 {
		return base, nil
	}
	return &Path{Base: base, Steps: steps}, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.Kind == TokNumber:
		v := xdm.ParseTyped(p.tok.Text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{V: v}, nil
	case p.tok.Kind == TokString:
		v := xdm.Str(p.tok.Text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{V: v}, nil
	case p.tok.Kind == TokVar:
		v := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &VarRef{Name: v}, nil
	case p.isSymbol("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.isSymbol("."):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ContextItem{}, nil
	case p.isSymbol("<"):
		return p.parseElemCtor()
	case p.tok.Kind == TokIdent:
		name := p.tok.Text
		if name == "OLD_NODE" || name == "NEW_NODE" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &NodeRef{Old: name == "OLD_NODE"}, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isSymbol("(") {
			return nil, fmt.Errorf("xquery: unexpected identifier %q at offset %d", name, p.tok.Pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var args []Expr
		if !p.isSymbol(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.isSymbol(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if name == "view" {
			if len(args) != 1 {
				return nil, fmt.Errorf("xquery: view() takes one string argument")
			}
			lit, ok := args[0].(*Lit)
			if !ok || lit.V.Kind() != xdm.KindString {
				return nil, fmt.Errorf("xquery: view() argument must be a string literal")
			}
			return &ViewRef{Name: lit.V.AsString()}, nil
		}
		return &FnCall{Name: name, Args: args}, nil
	default:
		return nil, fmt.Errorf("xquery: unexpected %s at offset %d", p.tok, p.tok.Pos)
	}
}

// parseElemCtor parses a direct element constructor. The lookahead token is
// '<'; the constructor is scanned in raw character mode starting at its
// position.
func (p *Parser) parseElemCtor() (Expr, error) {
	src := p.lx.Src()
	pos := p.tok.Pos // at '<'
	e, next, err := p.scanCtor(src, pos)
	if err != nil {
		return nil, err
	}
	p.lx.SetPos(next)
	if err := p.advance(); err != nil {
		return nil, err
	}
	return e, nil
}

// scanCtor parses "<name attr=... > content </name>" starting at pos
// (which must be '<'); returns the node and the offset just past it.
func (p *Parser) scanCtor(src string, pos int) (*ElemCtor, int, error) {
	if pos >= len(src) || src[pos] != '<' {
		return nil, 0, fmt.Errorf("xquery: expected '<' at offset %d", pos)
	}
	i := pos + 1
	name, i := scanCtorName(src, i)
	if name == "" {
		return nil, 0, fmt.Errorf("xquery: expected element name at offset %d", i)
	}
	e := &ElemCtor{Name: name}
	// Attributes.
	for {
		i = skipWS(src, i)
		if i >= len(src) {
			return nil, 0, fmt.Errorf("xquery: unterminated constructor <%s>", name)
		}
		if strings.HasPrefix(src[i:], "/>") {
			return e, i + 2, nil
		}
		if src[i] == '>' {
			i++
			break
		}
		an, j := scanCtorName(src, i)
		if an == "" {
			return nil, 0, fmt.Errorf("xquery: expected attribute name at offset %d", i)
		}
		i = skipWS(src, j)
		if i >= len(src) || src[i] != '=' {
			return nil, 0, fmt.Errorf("xquery: expected '=' after attribute %q", an)
		}
		i = skipWS(src, i+1)
		if i >= len(src) {
			return nil, 0, fmt.Errorf("xquery: unterminated attribute %q", an)
		}
		switch src[i] {
		case '{':
			expr, j, err := p.scanEnclosed(src, i)
			if err != nil {
				return nil, 0, err
			}
			e.Attrs = append(e.Attrs, AttrCtor{Name: an, Val: expr})
			i = j
		case '"', '\'':
			q := src[i]
			j := i + 1
			start := j
			// The value may itself be an enclosed expression: name="{...}".
			for j < len(src) && src[j] != q {
				j++
			}
			if j >= len(src) {
				return nil, 0, fmt.Errorf("xquery: unterminated attribute value for %q", an)
			}
			raw := src[start:j]
			if strings.HasPrefix(raw, "{") && strings.HasSuffix(raw, "}") {
				inner, err := Parse(raw[1 : len(raw)-1])
				if err != nil {
					return nil, 0, err
				}
				e.Attrs = append(e.Attrs, AttrCtor{Name: an, Val: inner})
			} else {
				e.Attrs = append(e.Attrs, AttrCtor{Name: an, Val: &Lit{V: xdm.Str(raw)}})
			}
			i = j + 1
		default:
			return nil, 0, fmt.Errorf("xquery: expected attribute value at offset %d", i)
		}
	}
	// Content.
	for {
		if i >= len(src) {
			return nil, 0, fmt.Errorf("xquery: missing </%s>", name)
		}
		if strings.HasPrefix(src[i:], "</") {
			j := i + 2
			cn, j := scanCtorName(src, j)
			if cn != name {
				return nil, 0, fmt.Errorf("xquery: mismatched </%s>, want </%s>", cn, name)
			}
			j = skipWS(src, j)
			if j >= len(src) || src[j] != '>' {
				return nil, 0, fmt.Errorf("xquery: expected '>' after </%s", name)
			}
			return e, j + 1, nil
		}
		switch src[i] {
		case '<':
			child, j, err := p.scanCtor(src, i)
			if err != nil {
				return nil, 0, err
			}
			e.Content = append(e.Content, child)
			i = j
		case '{':
			expr, j, err := p.scanEnclosed(src, i)
			if err != nil {
				return nil, 0, err
			}
			e.Content = append(e.Content, expr)
			i = j
		default:
			start := i
			for i < len(src) && src[i] != '<' && src[i] != '{' {
				i++
			}
			txt := strings.TrimSpace(src[start:i])
			if txt != "" {
				e.Content = append(e.Content, &Lit{V: xdm.Str(txt)})
			}
		}
	}
}

// scanEnclosed parses "{ Expr }" starting at the '{' and returns the
// expression and the offset just past the '}'.
func (p *Parser) scanEnclosed(src string, pos int) (Expr, int, error) {
	// Find the matching close brace, accounting for nesting and strings.
	depth := 0
	i := pos
	for i < len(src) {
		switch src[i] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				inner := src[pos+1 : i]
				e, err := Parse(inner)
				if err != nil {
					return nil, 0, err
				}
				return e, i + 1, nil
			}
		case '\'', '"':
			q := src[i]
			i++
			for i < len(src) && src[i] != q {
				i++
			}
		}
		i++
	}
	return nil, 0, fmt.Errorf("xquery: unbalanced '{' at offset %d", pos)
}

func skipWS(src string, i int) int {
	for i < len(src) {
		switch src[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

func scanCtorName(src string, i int) (string, int) {
	start := i
	for i < len(src) {
		c := src[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '>' || c == '=' || c == '/' || c == '<' || c == '{' {
			break
		}
		i++
	}
	return src[start:i], i
}
