// Package xquery implements the XQuery subset of the paper (Appendix D):
// FLWOR expressions, XPath with child/descendant/attribute axes and
// predicates, quantified expressions, arithmetic and comparison operators,
// direct element constructors, and the built-in functions with SQL
// counterparts. Parent/sibling axes and type expressions are not supported,
// matching the paper's restrictions.
package xquery

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexer tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokVar    // $name
	TokString // 'x' or "x"
	TokNumber
	TokSymbol // punctuation / operators
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

// Lexer tokenizes an XQuery (or trigger DDL) source string. The parser
// drives it token by token and can also switch to raw character access for
// direct element constructors.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Pos returns the current byte offset (used for error reporting and
// constructor mode switching).
func (l *Lexer) Pos() int { return l.pos }

// SetPos rewinds/advances the raw position (constructor mode).
func (l *Lexer) SetPos(p int) { l.pos = p }

// Src exposes the underlying source.
func (l *Lexer) Src() string { return l.src }

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// (: comments :)
		if c == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			end := strings.Index(l.src[l.pos+2:], ":)")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
			continue
		}
		return
	}
}

// twoCharSymbols in match priority order.
var twoCharSymbols = []string{"!=", "<=", ">=", "//", ":="}

// Next scans the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '$':
		l.pos++
		name := l.scanName()
		if name == "" {
			return Token{}, fmt.Errorf("xquery: expected variable name after $ at %d", start)
		}
		return Token{Kind: TokVar, Text: name, Pos: start}, nil
	case c == '\'' || c == '"':
		// The paper renders string literals with doubled single quotes
		// (''default''); treat '' followed by a non-quote as a two-char
		// delimiter.
		if c == '\'' && l.pos+2 < len(l.src) && l.src[l.pos+1] == '\'' && l.src[l.pos+2] != '\'' {
			end := strings.Index(l.src[l.pos+2:], "''")
			if end >= 0 {
				text := l.src[l.pos+2 : l.pos+2+end]
				l.pos += 2 + end + 2
				return Token{Kind: TokString, Text: text, Pos: start}, nil
			}
		}
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == c {
				// Doubled quotes escape (SQL style, used in the paper's
				// view('default') examples written as ''default'').
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == c {
					sb.WriteByte(c)
					l.pos += 2
					continue
				}
				l.pos++
				return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return Token{}, fmt.Errorf("xquery: unterminated string at %d", start)
	case c >= '0' && c <= '9':
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case isNameStart(rune(c)):
		name := l.scanName()
		return Token{Kind: TokIdent, Text: name, Pos: start}, nil
	default:
		for _, sym := range twoCharSymbols {
			if strings.HasPrefix(l.src[l.pos:], sym) {
				l.pos += len(sym)
				return Token{Kind: TokSymbol, Text: sym, Pos: start}, nil
			}
		}
		l.pos++
		return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
	}
}

func (l *Lexer) scanName() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if isNameStart(c) || isDigit(l.src[l.pos]) || c == '-' || c == '.' {
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func isNameStart(c rune) bool {
	return c == '_' || unicode.IsLetter(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
