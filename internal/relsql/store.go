//go:build sqlite

package relsql

import (
	"database/sql"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/sqlshim"
	"quark/internal/xdm"
	"quark/internal/xqgm"
)

// Available reports whether the real-database backend is compiled in.
func Available() bool { return true }

var shadowSeq atomic.Int64

// Shadow mirrors a reldb store onto a database/sql backend and verifies
// every translated plan's rendered SQL against the evaluator's result. It
// implements core.PlanShadow structurally (no import of internal/core).
//
// Verification is stateless per call: the mirror is rebuilt from the source
// store and the firing's transition tables each time, so the shadow never
// drifts and needs no write-path integration.
type Shadow struct {
	mu       sync.Mutex
	src      reldb.Reader
	db       *sql.DB
	dsn      string
	verified atomic.Int64
}

// NewShadow opens a backend database mirroring src.
func NewShadow(src reldb.Reader) (*Shadow, error) {
	dsn := fmt.Sprintf("relsql-shadow-%d", shadowSeq.Add(1))
	db, err := sql.Open("sqlshim", dsn)
	if err != nil {
		return nil, fmt.Errorf("relsql: open backend: %w", err)
	}
	return &Shadow{src: src, db: db, dsn: dsn}, nil
}

// Close releases the backend database.
func (s *Shadow) Close() error {
	sqlshim.Detach(s.dsn)
	return s.db.Close()
}

// Verified reports how many plan evaluations this shadow has verified.
func (s *Shadow) Verified() int64 { return s.verified.Load() }

// DDL returns the CREATE TABLE statements the shadow issues for the source
// schema: every base table plus its INSERTED_/DELETED_ transition tables.
func DDL(sc *schema.Schema) []string {
	var out []string
	for _, t := range sc.Tables() {
		out = append(out, createSQL(t.Name, t, true))
		out = append(out, createSQL("INSERTED_"+t.Name, t, false))
		out = append(out, createSQL("DELETED_"+t.Name, t, false))
	}
	return out
}

func createSQL(name string, t *schema.Table, withPK bool) string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(name)
	sb.WriteString(" (")
	for i, c := range t.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteByte(' ')
		sb.WriteString(c.Type.String())
	}
	// Transition tables are bags: the same row can legitimately appear
	// twice (e.g. two identical inserts on a keyless table), so they never
	// carry the base table's key.
	if withPK && t.HasPrimaryKey() {
		sb.WriteString(", PRIMARY KEY (")
		sb.WriteString(strings.Join(t.PrimaryKey, ", "))
		sb.WriteString(")")
	}
	sb.WriteString(")")
	return sb.String()
}

// sync rebuilds the mirror: base tables from the source store (post-statement
// state, matching what an AFTER trigger sees) and transition tables from the
// firing's deltas. Tables absent from deltas get empty transition tables —
// the evaluator treats missing transitions as empty too.
func (s *Shadow) sync(deltas map[string]*xqgm.Transition) error {
	for _, t := range s.src.Schema().Tables() {
		names := []string{t.Name, "INSERTED_" + t.Name, "DELETED_" + t.Name}
		for i, n := range names {
			if _, err := s.db.Exec("DROP TABLE IF EXISTS " + n); err != nil {
				return err
			}
			if _, err := s.db.Exec(createSQL(n, t, i == 0)); err != nil {
				return err
			}
		}
		var rows []reldb.Row
		if err := s.src.Scan(t.Name, func(r reldb.Row) bool {
			rows = append(rows, r)
			return true
		}); err != nil {
			return err
		}
		if err := s.insertAll(t.Name, len(t.Columns), rows); err != nil {
			return err
		}
		if d := deltas[t.Name]; d != nil {
			if err := s.insertAll("INSERTED_"+t.Name, len(t.Columns), d.Inserted); err != nil {
				return err
			}
			if err := s.insertAll("DELETED_"+t.Name, len(t.Columns), d.Deleted); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Shadow) insertAll(table string, width int, rows []reldb.Row) error {
	if len(rows) == 0 {
		return nil
	}
	ph := "(" + strings.TrimSuffix(strings.Repeat("?, ", width), ", ") + ")"
	stmt := "INSERT INTO " + table + " VALUES " + ph
	for _, r := range rows {
		args := make([]any, width)
		for i, v := range r {
			args[i] = sqlshim.Canon(v)
		}
		if _, err := s.db.Exec(stmt, args...); err != nil {
			return fmt.Errorf("relsql: load %s: %w", table, err)
		}
	}
	return nil
}

// VerifyPlan implements the core.PlanShadow seam: rebuild the mirror for
// this firing, run the rendered SQL, and compare the result multiset with
// the evaluator's rows.
func (s *Shadow) VerifyPlan(table, sqlText string, deltas map[string]*xqgm.Transition, rows []xqgm.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sync(deltas); err != nil {
		return fmt.Errorf("relsql: sync mirror: %w", err)
	}
	got, err := s.queryAll(sqlText)
	if err != nil {
		return fmt.Errorf("relsql: execute plan for %s: %w", table, err)
	}
	want := make([]string, len(rows))
	for i, r := range rows {
		vals := make([]any, len(r))
		for j, v := range r {
			vals[j] = sqlshim.Canon(v)
		}
		want[i] = canonRow(vals)
	}
	if diff := multisetDiff(want, got); diff != "" {
		return fmt.Errorf("relsql: plan result mismatch on %s:\n%s", table, diff)
	}
	s.verified.Add(1)
	return nil
}

// ExplainPlan returns the backend's EXPLAIN QUERY PLAN text for a rendered
// plan (one line per plan step). The mirror's tables must exist, so the
// schema is synced first with empty transitions.
func (s *Shadow) ExplainPlan(sqlText string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sync(nil); err != nil {
		return "", err
	}
	lines, err := s.queryAll("EXPLAIN QUERY PLAN " + sqlText)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, l := range lines {
		sb.WriteString(strings.TrimPrefix(l, "s:"))
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// queryAll runs a query and returns one canonical string per result row.
func (s *Shadow) queryAll(q string) ([]string, error) {
	rws, err := s.db.Query(q)
	if err != nil {
		return nil, err
	}
	defer rws.Close()
	cols, err := rws.Columns()
	if err != nil {
		return nil, err
	}
	var out []string
	for rws.Next() {
		vals := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		if err := rws.Scan(ptrs...); err != nil {
			return nil, err
		}
		out = append(out, canonRow(vals))
	}
	return out, rws.Err()
}

// canonRow renders one result row as an injective, type-tagged string so
// multiset comparison across the SQL boundary is exact.
func canonRow(vals []any) string {
	var sb strings.Builder
	for i, v := range vals {
		if i > 0 {
			sb.WriteString(" | ")
		}
		switch x := v.(type) {
		case nil:
			sb.WriteString("null")
		case []byte:
			fmt.Fprintf(&sb, "s:%s", x)
		case string:
			fmt.Fprintf(&sb, "s:%s", x)
		case int64:
			fmt.Fprintf(&sb, "i:%d", x)
		case float64:
			fmt.Fprintf(&sb, "f:%s", xdm.Float(x).Lexical())
		case bool:
			fmt.Fprintf(&sb, "b:%t", x)
		default:
			fmt.Fprintf(&sb, "?:%v", x)
		}
	}
	return sb.String()
}

// multisetDiff compares two row multisets and describes the difference
// ("" when identical).
func multisetDiff(want, got []string) string {
	counts := map[string]int{}
	for _, w := range want {
		counts[w]++
	}
	for _, g := range got {
		counts[g]--
	}
	var missing, extra []string
	for k, n := range counts {
		for ; n > 0; n-- {
			missing = append(missing, k)
		}
		for ; n < 0; n++ {
			extra = append(extra, k)
		}
	}
	if len(missing) == 0 && len(extra) == 0 {
		return ""
	}
	sort.Strings(missing)
	sort.Strings(extra)
	var sb strings.Builder
	fmt.Fprintf(&sb, "evaluator rows: %d, SQL rows: %d\n", len(want), len(got))
	for _, m := range missing {
		sb.WriteString("  only evaluator: " + m + "\n")
	}
	for _, e := range extra {
		sb.WriteString("  only SQL:       " + e + "\n")
	}
	return strings.TrimSuffix(sb.String(), "\n")
}
