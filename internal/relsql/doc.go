// Package relsql is the real-database backend: it presents the reldb store
// through database/sql and replays the RenderSQL output of every compiled
// trigger plan against real INSERTED_/DELETED_ delta tables, verifying the
// SQL results against the in-memory evaluator row for row (the paper's
// translated triggers are plain SQL — this backend proves the rendered text
// actually executes and agrees).
//
// The implementation is gated behind the "sqlite" build tag so the default
// build stays dependency-free; without the tag a stub keeps the API shape
// and reports Available() == false. With the tag, the backend drives the
// registered "sqlshim" database/sql driver (internal/sqlshim), an embedded
// SQLite-dialect engine, so no cgo or external module is required either
// way.
package relsql

import "errors"

// ErrUnavailable is returned by every entry point when the backend is not
// compiled in (build without the "sqlite" tag). It is declared outside the
// build-tag pair so callers can errors.Is against it under either build.
var ErrUnavailable = errors.New("relsql: real-database backend not compiled in (build with -tags sqlite)")
