//go:build !sqlite

package relsql

import (
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xqgm"
)

// Available reports whether the real-database backend is compiled in.
func Available() bool { return false }

// Shadow is the no-op stand-in for the backend shadow.
type Shadow struct{}

// NewShadow reports the backend as unavailable.
func NewShadow(src reldb.Reader) (*Shadow, error) { return nil, ErrUnavailable }

// Close implements the Shadow API.
func (s *Shadow) Close() error { return nil }

// Verified implements the Shadow API.
func (s *Shadow) Verified() int64 { return 0 }

// VerifyPlan implements the core.PlanShadow seam.
func (s *Shadow) VerifyPlan(table, sqlText string, deltas map[string]*xqgm.Transition, rows []xqgm.Tuple) error {
	return ErrUnavailable
}

// ExplainPlan implements the Shadow API.
func (s *Shadow) ExplainPlan(sqlText string) (string, error) { return "", ErrUnavailable }

// DDL returns the backend DDL for the schema (shared with the real build so
// docs and tests can show it without the tag).
func DDL(sc *schema.Schema) []string { return nil }
