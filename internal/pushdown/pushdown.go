// Package pushdown implements the trigger-pushdown rewrites of paper
// Section 5.2: pushing the affected-keys semijoin down through the view
// graph (selection/join pushdown) so that a firing trigger touches only the
// base rows that can contribute to affected nodes, instead of evaluating
// the whole view. Combined with the evaluator's index-nested-loop joins,
// this is what keeps per-update cost independent of database size
// (Figure 23) — compare the generated SQL in Figure 16, where every CTE is
// joined with AffectedKeys.
package pushdown

import (
	"quark/internal/xqgm"
)

// PushSemiJoin restricts the graph rooted at root to the rows whose columns
// `cols` (positions in root's output) match some row of keys (whose output
// is exactly those key values, in order). It returns a rewritten graph with
// the same output schema, plus a mapping from original operators to their
// rewritten counterparts along the pushed path (unchanged subtrees are
// shared, not cloned, and do not appear in the map).
//
// The rewrite pushes the semijoin through Select, Project (column
// references), OrderBy, GroupBy (when the key columns are grouping
// columns: σ_k(γ_G(I)) = γ_G(σ_k(I))), Union branches, and into one or
// both sides of a Join; where it can push no further it attaches
// Project(I.cols)(Join(I, keys)) — each I row matches at most one keys row
// (keys are distinct), so no duplicates arise.
func PushSemiJoin(root *xqgm.Operator, keys *xqgm.Operator, cols []int) (*xqgm.Operator, map[*xqgm.Operator]*xqgm.Operator) {
	m := map[*xqgm.Operator]*xqgm.Operator{}
	out := push(root, keys, cols, m)
	// Re-derive canonical keys on the rewritten graph: rebuilt operators
	// start without keys, and the evaluator uses keys for deterministic
	// aggXMLFrag document order.
	xqgm.DeriveKeys(out)
	return out, m
}

// attach joins keys at this level and projects the original schema back.
func attach(o *xqgm.Operator, keys *xqgm.Operator, cols []int) *xqgm.Operator {
	on := make([]xqgm.JoinEq, len(cols))
	for j, c := range cols {
		on[j] = xqgm.JoinEq{L: c, R: j}
	}
	join := xqgm.NewJoin(xqgm.JoinInner, o, keys, on, nil)
	w := o.OutWidth()
	idx := make([]int, w)
	for i := range idx {
		idx[i] = i
	}
	return xqgm.ProjectCols(join, idx)
}

// distinctProject builds a duplicate-free projection of the given key
// columns (used when only part of a composite key can be pushed into one
// join side).
func distinctProject(keys *xqgm.Operator, idx []int) *xqgm.Operator {
	proj := xqgm.ProjectCols(keys, idx)
	g := make([]int, len(idx))
	for i := range g {
		g[i] = i
	}
	return xqgm.NewGroupBy(proj, g)
}

func push(o *xqgm.Operator, keys *xqgm.Operator, cols []int, m map[*xqgm.Operator]*xqgm.Operator) *xqgm.Operator {
	if len(cols) == 0 {
		return o
	}
	switch o.Type {
	case xqgm.OpSelect:
		in := push(o.Inputs[0], keys, cols, m)
		if in == o.Inputs[0] {
			return attach(o, keys, cols)
		}
		n := xqgm.NewSelect(in, o.Pred)
		m[o] = n
		return n

	case xqgm.OpOrderBy:
		in := push(o.Inputs[0], keys, cols, m)
		if in == o.Inputs[0] {
			return attach(o, keys, cols)
		}
		n := xqgm.NewOrderBy(in, o.OrderCols...)
		m[o] = n
		return n

	case xqgm.OpProject:
		// Map the pushed columns through column-reference projections.
		inCols := make([]int, len(cols))
		for j, c := range cols {
			if c >= len(o.Projs) {
				return attach(o, keys, cols)
			}
			cr, ok := o.Projs[c].E.(*xqgm.ColRef)
			if !ok || cr.Input != 0 {
				return attach(o, keys, cols)
			}
			inCols[j] = cr.Col
		}
		in := push(o.Inputs[0], keys, inCols, m)
		if in == o.Inputs[0] {
			return attach(o, keys, cols)
		}
		n := xqgm.NewProject(in, o.Projs...)
		m[o] = n
		return n

	case xqgm.OpGroupBy:
		// Pushable only when every pushed column is a grouping column:
		// restricting groups = restricting input rows by group key.
		ng := len(o.GroupCols)
		inCols := make([]int, len(cols))
		for j, c := range cols {
			if c >= ng {
				return attach(o, keys, cols)
			}
			inCols[j] = o.GroupCols[c]
		}
		in := push(o.Inputs[0], keys, inCols, m)
		if in == o.Inputs[0] {
			return attach(o, keys, cols)
		}
		n := xqgm.NewGroupBy(in, o.GroupCols, o.Aggs...)
		m[o] = n
		return n

	case xqgm.OpJoin:
		if o.JoinKind == xqgm.JoinLeftOuter {
			// Restricting the left side restricts the output directly.
			// When the pushed columns are all left join columns, the same
			// keys also restrict the right side (surviving left rows can
			// only match right rows with those key values).
			l := push(o.Inputs[0], keys, cols, m)
			r := o.Inputs[1]
			if mapped, ok := mapThroughOn(cols, o.On); ok {
				r = push(r, keys, mapped, m)
			}
			if l == o.Inputs[0] && r == o.Inputs[1] {
				return attach(o, keys, cols)
			}
			n := xqgm.NewJoin(o.JoinKind, l, r, o.On, o.JoinPred)
			m[o] = n
			return n
		}
		if o.JoinKind != xqgm.JoinInner {
			return attach(o, keys, cols)
		}
		lw := o.Inputs[0].OutWidth()
		var lIdx, rIdx []int   // positions within keys' output
		var lCols, rCols []int // positions within the join side
		for j, c := range cols {
			if c < lw {
				lIdx = append(lIdx, j)
				lCols = append(lCols, c)
			} else {
				rIdx = append(rIdx, j)
				rCols = append(rCols, c-lw)
			}
		}
		l, r := o.Inputs[0], o.Inputs[1]
		switch {
		case len(rIdx) == 0:
			l = push(l, keys, lCols, m)
		case len(lIdx) == 0:
			r = push(r, keys, rCols, m)
		default:
			// Composite key spanning both sides: push a distinct partial
			// key restriction into each side (sound: a superset of the
			// needed rows survives; the enclosing key join re-filters).
			l = push(l, distinctProject(keys, lIdx), lCols, m)
			r = push(r, distinctProject(keys, rIdx), rCols, m)
		}
		if l == o.Inputs[0] && r == o.Inputs[1] {
			return attach(o, keys, cols)
		}
		n := xqgm.NewJoin(o.JoinKind, l, r, o.On, o.JoinPred)
		m[o] = n
		return n

	case xqgm.OpUnion:
		ins := make([]*xqgm.Operator, len(o.Inputs))
		changed := false
		for i, in := range o.Inputs {
			ins[i] = push(in, keys, cols, m)
			if ins[i] != in {
				changed = true
			}
		}
		if !changed {
			return attach(o, keys, cols)
		}
		n := xqgm.NewUnion(o.Distinct, ins...)
		m[o] = n
		return n

	case xqgm.OpTable, xqgm.OpConstants:
		return attach(o, keys, cols)

	default:
		return attach(o, keys, cols)
	}
}

// mapThroughOn maps left-side column positions to the corresponding
// right-side positions of a join's equality pairs; ok is false when any
// column is not a left join column.
func mapThroughOn(cols []int, on []xqgm.JoinEq) ([]int, bool) {
	out := make([]int, len(cols))
	for i, c := range cols {
		found := false
		for _, eq := range on {
			if eq.L == c {
				out[i] = eq.R
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}
