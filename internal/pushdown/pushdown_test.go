package pushdown

import (
	"sort"
	"testing"

	"quark/internal/fixtures"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
	"quark/internal/xqgm"
)

func keysOp(vals ...string) *xqgm.Operator {
	rows := make([][]xqgm.Expr, len(vals))
	for i, v := range vals {
		rows[i] = []xqgm.Expr{xqgm.LitOf(xdm.Str(v))}
	}
	return xqgm.NewConstants([]string{"k"}, rows)
}

func evalSorted(t *testing.T, db *reldb.DB, op *xqgm.Operator) []string {
	t.Helper()
	ctx := xqgm.NewEvalContext(db, nil)
	rows, err := ctx.Eval(op)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		s := ""
		for i, v := range r {
			if i > 0 {
				s += "|"
			}
			s += v.Lexical()
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TestPushEquivalence: for every shape, the pushed graph must produce the
// same rows as the unpushed semijoin.
func TestPushEquivalence(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	if err := db.CreateIndex("product", "pname"); err != nil {
		t.Fatal(err)
	}
	v := fixtures.BuildCatalogView(s, 2)
	keys := keysOp("CRT 15", "Nonexistent")

	// Reference: join at the top.
	ref := xqgm.NewJoin(xqgm.JoinInner, v.ProductProj, keys,
		[]xqgm.JoinEq{{L: v.ProdNameCol, R: 0}}, nil)
	refProj := xqgm.ProjectCols(ref, []int{0, 1, 2})
	want := evalSorted(t, db, refProj)

	pushed, m := PushSemiJoin(fixtures.BuildCatalogView(s, 2).ProductProj, keys, []int{1})
	got := evalSorted(t, db, pushed)
	if len(got) != len(want) {
		t.Fatalf("pushed rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("row %d: %q vs %q", i, got[i], want[i])
		}
	}
	if len(m) == 0 {
		t.Error("pushdown map empty; nothing was pushed")
	}
	// The aggregates must still be complete: CRT 15 keeps all 5 vendors
	// even though the semijoin restricted products.
	if len(got) != 1 {
		t.Fatalf("got %d rows", len(got))
	}
}

// TestPushReachesBaseTable: the semijoin must land on the product table
// (visible as a join against the Constants op below the GroupBy).
func TestPushReachesBaseTable(t *testing.T) {
	s := schema.ProductVendor()
	v := fixtures.BuildCatalogView(s, 2)
	keys := keysOp("CRT 15")
	pushed, _ := PushSemiJoin(v.ProductProj, keys, []int{1})
	// Walk: there must be a Join whose right input is the Constants op and
	// whose left input is (a projection of) the product table.
	foundLow := false
	xqgm.Walk(pushed, func(o *xqgm.Operator) {
		if o.Type == xqgm.OpJoin && len(o.Inputs) == 2 && o.Inputs[1] == keys {
			if o.Inputs[0].Type == xqgm.OpTable && o.Inputs[0].Table == "product" {
				foundLow = true
			}
		}
	})
	if !foundLow {
		t.Errorf("semijoin did not reach the product table:\n%s", pushed)
	}
	// The GroupBy in the pushed graph differs from the original (it was
	// rebuilt over the restricted input).
	var origGB, pushedGB *xqgm.Operator
	xqgm.Walk(v.ProductProj, func(o *xqgm.Operator) {
		if o.Type == xqgm.OpGroupBy {
			origGB = o
		}
	})
	xqgm.Walk(pushed, func(o *xqgm.Operator) {
		if o.Type == xqgm.OpGroupBy {
			pushedGB = o
		}
	})
	if origGB == pushedGB {
		t.Error("GroupBy was not rebuilt along the pushed path")
	}
}

// TestPushIndexAccess: with indexes present, evaluating the pushed graph
// performs no full scans of the large table.
func TestPushIndexAccess(t *testing.T) {
	s := schema.ProductVendor()
	db, err := reldb.Open(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("product", "pname"); err != nil {
		t.Fatal(err)
	}
	// 200 products x 8 vendors.
	var prows, vrows []reldb.Row
	for i := 0; i < 200; i++ {
		pid := xdm.Str(pidFor(i))
		prows = append(prows, reldb.Row{pid, xdm.Str(nameFor(i)), xdm.Str("m")})
		for j := 0; j < 8; j++ {
			vrows = append(vrows, reldb.Row{xdm.Int(int64(i*8 + j)), pid, xdm.Float(float64(50 + j))})
		}
	}
	s2 := schema.New()
	_ = s2
	if err := db.Insert("product", prows...); err != nil {
		t.Fatal(err)
	}
	// vendor vid is string in ProductVendor; rebuild rows with string vids.
	vrows = vrows[:0]
	for i := 0; i < 200; i++ {
		for j := 0; j < 8; j++ {
			vrows = append(vrows, reldb.Row{xdm.Str(vidFor(i, j)), xdm.Str(pidFor(i)), xdm.Float(float64(50 + j))})
		}
	}
	if err := db.Insert("vendor", vrows...); err != nil {
		t.Fatal(err)
	}
	v := fixtures.BuildCatalogView(s, 2)
	keys := keysOp(nameFor(42))
	pushed, _ := PushSemiJoin(v.ProductProj, keys, []int{1})
	db.ResetStats()
	rows := evalSorted(t, db, pushed)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	st := db.Stats()
	if st.FullScans != 0 {
		t.Errorf("full scans = %d, want 0 (index-only access); stats %+v", st.FullScans, st)
	}
	if st.IndexLookups == 0 {
		t.Error("no index lookups recorded")
	}
	// Rows read should be tiny relative to the table sizes.
	if st.RowsRead > 64 {
		t.Errorf("rows read = %d, want far fewer than the 1800 stored", st.RowsRead)
	}
}

func pidFor(i int) string  { return "P" + itoa(i) }
func nameFor(i int) string { return "Product " + itoa(i) }
func vidFor(i, j int) string {
	return "V" + itoa(i) + "_" + itoa(j)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestPushCompositeKeyAcrossJoin: keys spanning both join sides are pushed
// as partial restrictions into each side.
func TestPushCompositeKeyAcrossJoin(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	pdef, _ := s.Table("product")
	vdef, _ := s.Table("vendor")
	prod := xqgm.NewTable(pdef, xqgm.SrcBase)
	vend := xqgm.NewTable(vdef, xqgm.SrcBase)
	join := xqgm.NewJoin(xqgm.JoinInner, prod, vend, []xqgm.JoinEq{{L: 0, R: 1}}, nil)
	xqgm.DeriveKeys(join)
	// Composite key: (p.pid, v.vid) spanning both sides.
	keys := xqgm.NewConstants([]string{"pid", "vid"}, [][]xqgm.Expr{
		{xqgm.LitOf(xdm.Str("P1")), xqgm.LitOf(xdm.Str("Amazon"))},
		{xqgm.LitOf(xdm.Str("P2")), xqgm.LitOf(xdm.Str("Bestbuy"))},
	})
	pushed, _ := PushSemiJoin(join, keys, []int{0, 3})
	// A composite key spanning both sides is pushed as partial restrictions
	// whose join is a superset; the enclosing key join (as CreateANGraph
	// adds) re-filters exactly.
	enclosing := xqgm.NewJoin(xqgm.JoinInner, pushed, keys, []xqgm.JoinEq{{L: 0, R: 0}, {L: 3, R: 1}}, nil)
	idx0 := make([]int, join.OutWidth())
	for i := range idx0 {
		idx0[i] = i
	}
	got := evalSorted(t, db, xqgm.ProjectCols(enclosing, idx0))
	supersetRows := evalSorted(t, db, pushed)
	if len(supersetRows) < len(got) {
		t.Errorf("pushed superset (%d) smaller than filtered (%d)", len(supersetRows), len(got))
	}
	// Reference.
	ref := xqgm.NewJoin(xqgm.JoinInner, join, keys, []xqgm.JoinEq{{L: 0, R: 0}, {L: 3, R: 1}}, nil)
	idx := make([]int, join.OutWidth())
	for i := range idx {
		idx[i] = i
	}
	want := evalSorted(t, db, xqgm.ProjectCols(ref, idx))
	if len(got) != len(want) || len(got) != 2 {
		t.Fatalf("got %d rows, want %d (=2)", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("row %d: %q vs %q", i, got[i], want[i])
		}
	}
}

// TestPushThroughUnion: restriction distributes into branches.
func TestPushThroughUnion(t *testing.T) {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		t.Fatal(err)
	}
	s := db.Schema()
	pdef, _ := s.Table("product")
	p := xqgm.NewTable(pdef, xqgm.SrcBase)
	a := xqgm.NewSelect(p, &xqgm.Cmp{Op: "=", L: xqgm.Col(2), R: xqgm.LitOf(xdm.Str("Samsung"))})
	b := xqgm.NewSelect(p, &xqgm.Cmp{Op: "=", L: xqgm.Col(1), R: xqgm.LitOf(xdm.Str("CRT 15"))})
	u := xqgm.NewUnion(true, a, b)
	keys := keysOp("P1", "P3")
	pushed, _ := PushSemiJoin(u, keys, []int{0})
	got := evalSorted(t, db, pushed)
	if len(got) != 2 {
		t.Fatalf("rows = %d, want 2 (P1, P3)", len(got))
	}
}
