// Package quark holds the repository-level benchmark harness: one
// testing.B benchmark per table/figure of the paper's evaluation
// (Section 6 and Appendix G), plus ablations for the design choices called
// out in DESIGN.md. Benchmarks run at a reduced scale by default so
// `go test -bench=.` completes quickly; cmd/benchrunner regenerates the
// figures at paper scale.
package quark

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quark/internal/core"
	"quark/internal/dispatch"
	"quark/internal/obs"
	"quark/internal/outbox"
	"quark/internal/wire"
	"quark/internal/workload"
)

// benchScale keeps default runs fast; benchrunner uses paper scale.
func benchParams() workload.Params {
	return workload.Params{
		Depth:        2,
		LeafTuples:   32 * 1024,
		Fanout:       64,
		NumTriggers:  1000,
		NumSatisfied: 1,
	}
}

func runUpdates(b *testing.B, w *workload.Setup) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.UpdateOneLeaf(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if w.Notifications == 0 {
		b.Fatal("no notifications fired; benchmark is not exercising the pipeline")
	}
}

// BenchmarkFig17NumTriggers reproduces Figure 17: per-update time as the
// number of structurally similar triggers grows, for UNGROUPED, GROUPED,
// and GROUPED-AGG. UNGROUPED grows with the trigger count; the grouped
// modes stay flat.
func BenchmarkFig17NumTriggers(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeUngrouped, core.ModeGrouped, core.ModeGroupedAgg} {
		for _, n := range []int{1, 10, 100, 1000} {
			if mode == core.ModeUngrouped && n > 100 {
				// One SQL trigger set per XML trigger: quadratic bench time.
				continue
			}
			b.Run(fmt.Sprintf("%s/triggers=%d", mode, n), func(b *testing.B) {
				p := benchParams()
				p.NumTriggers = n
				w, err := workload.Build(p, mode, 1)
				if err != nil {
					b.Fatal(err)
				}
				runUpdates(b, w)
			})
		}
	}
}

// BenchmarkFig18Depth reproduces Figure 18: per-update time vs hierarchy
// depth (roughly linear growth).
func BenchmarkFig18Depth(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeGrouped, core.ModeGroupedAgg} {
		for _, d := range []int{2, 3, 4, 5} {
			b.Run(fmt.Sprintf("%s/depth=%d", mode, d), func(b *testing.B) {
				p := benchParams()
				p.Depth = d
				w, err := workload.Build(p, mode, 1)
				if err != nil {
					b.Fatal(err)
				}
				runUpdates(b, w)
			})
		}
	}
}

// BenchmarkFig22Fanout reproduces Figure 22 (Appendix G.1): per-update time
// vs leaf tuples per XML element (mild growth: larger OLD/NEW nodes).
func BenchmarkFig22Fanout(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeGrouped, core.ModeGroupedAgg} {
		for _, f := range []int{16, 32, 64, 128, 256} {
			b.Run(fmt.Sprintf("%s/fanout=%d", mode, f), func(b *testing.B) {
				p := benchParams()
				p.Fanout = f
				w, err := workload.Build(p, mode, 1)
				if err != nil {
					b.Fatal(err)
				}
				runUpdates(b, w)
			})
		}
	}
}

// BenchmarkFig23DataSize reproduces Figure 23 (Appendix G.2): per-update
// time vs number of leaf tuples (flat: no materialization, index access
// only touches affected keys).
func BenchmarkFig23DataSize(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeGrouped, core.ModeGroupedAgg} {
		for _, n := range []int{32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024} {
			b.Run(fmt.Sprintf("%s/leaves=%d", mode, n), func(b *testing.B) {
				p := benchParams()
				p.LeafTuples = n
				w, err := workload.Build(p, mode, 1)
				if err != nil {
					b.Fatal(err)
				}
				runUpdates(b, w)
			})
		}
	}
}

// BenchmarkFig24Satisfied reproduces Figure 24 (Appendix G.3): per-update
// time vs number of satisfied triggers (linear in the activations).
func BenchmarkFig24Satisfied(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeGrouped, core.ModeGroupedAgg} {
		for _, s := range []int{1, 20, 40, 80, 100} {
			b.Run(fmt.Sprintf("%s/satisfied=%d", mode, s), func(b *testing.B) {
				p := benchParams()
				p.NumSatisfied = s
				w, err := workload.Build(p, mode, 1)
				if err != nil {
					b.Fatal(err)
				}
				runUpdates(b, w)
			})
		}
	}
}

// BenchmarkBatchSize sweeps the batched-transaction API (Engine.Batch):
// k single-row leaf updates per commit, for k = 1, 10, 100, 1000. The
// translated SQL triggers fire once per commit with the merged Δ/∇, so
// the reported ns/row — the per-row trigger-firing cost — should drop
// roughly linearly with the batch size, against the "single" baseline of
// k independent statements each paying a full firing.
func BenchmarkBatchSize(b *testing.B) {
	for _, batched := range []bool{false, true} {
		api := "single"
		if batched {
			api = "batch"
		}
		for _, k := range []int{1, 10, 100, 1000} {
			if !batched && k > 100 {
				// 1000 independent firings per iteration: benchmark time
				// without extra information (the cost is linear in k).
				continue
			}
			b.Run(fmt.Sprintf("GROUPED/%s/rows=%d", api, k), func(b *testing.B) {
				w, err := workload.Build(benchParams(), core.ModeGrouped, 1)
				if err != nil {
					b.Fatal(err)
				}
				run := w.UpdateLeavesSingle
				if batched {
					run = w.UpdateLeavesBatch
				}
				// Warm-up (index builds, constants-table caches).
				if err := run(k); err != nil {
					b.Fatal(err)
				}
				warm := w.Notifications
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := run(k); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if w.Notifications == warm {
					b.Fatal("no notifications fired in the timed loop; benchmark is not exercising the pipeline")
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/row")
			})
		}
	}
}

// BenchmarkDispatch measures the writer-side cost of leaf updates whose
// satisfied trigger notifies a slow sink (1 ms per notification), with
// the action delivered inline (sync) vs through the async dispatcher at
// queue depth 1024 / 8 workers — and, in the third case, with the durable
// outbox appending every delivery to its segment log before the enqueue.
// Each iteration is a burst of 256 updates timed from the writer's side;
// the burst fits the queue, so in async mode the writer never blocks on
// the sink and the pool drains outside the timed region — which is
// exactly the decoupling being measured. Expected: ns/update improves
// well over 10x async vs sync, and the outbox costs the writer < 10% on
// top of async (a wire encode plus a buffered-file append per delivery).
func BenchmarkDispatch(b *testing.B) {
	const (
		sinkLatency = time.Millisecond
		burst       = 256
	)
	for _, cfg := range []struct {
		name           string
		async, durable bool
	}{
		{name: "sync"},
		{name: "async/queue=1024,workers=8", async: true},
		{name: "async+outbox/queue=1024,workers=8", async: true, durable: true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			// Small hierarchy: the point is sink latency vs writer latency,
			// not detection cost, so keep inline detection cheap.
			p := workload.Params{Depth: 2, LeafTuples: 128, Fanout: 4, NumTriggers: 10, NumSatisfied: 1}
			w, err := workload.Build(p, core.ModeGrouped, 1)
			if err != nil {
				b.Fatal(err)
			}
			var delivered atomic.Int64
			w.Engine.RegisterAction("notify", func(core.Invocation) error {
				time.Sleep(sinkLatency)
				delivered.Add(1)
				return nil
			})
			if cfg.async {
				if err := w.Engine.EnableAsyncDispatch(dispatch.Config{
					Workers: 8, QueueCap: 1024, Policy: dispatch.Block,
				}); err != nil {
					b.Fatal(err)
				}
				defer w.Engine.Close()
			}
			if cfg.durable {
				lg, err := outbox.Open(b.TempDir(), outbox.Options{})
				if err != nil {
					b.Fatal(err)
				}
				defer lg.Close()
				sink := outbox.SinkFunc(func(*wire.Record) error {
					time.Sleep(sinkLatency)
					delivered.Add(1)
					return nil
				})
				if err := w.Engine.EnableOutbox(lg, sink); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.UpdateOneLeaf(); err != nil { // warm-up
				b.Fatal(err)
			}
			w.Engine.Drain()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < burst; j++ {
					if err := w.UpdateOneLeaf(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				w.Engine.Drain() // the sink drains outside the writer-side timing
				b.StartTimer()
			}
			b.StopTimer()
			if delivered.Load() == 0 {
				b.Fatal("no notifications delivered; benchmark is not exercising dispatch")
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*burst), "ns/update")
		})
	}
}

// BenchmarkShardWriters measures concurrent writer throughput against the
// shard count: 8 writers, each updating leaves of its own top-level
// element (so statements route to fixed shards and never contend on the
// router's slow path). With one shard every writer serializes on the leaf
// table's lock; as shards grow, writers whose roots hash to different
// shards proceed in parallel — the near-linear scaling regime the sharded
// engine exists for.
// The obs=on variants run the identical workload with the full metrics
// and tracing pipeline attached; comparing ns/update against the plain
// variants measures the observability overhead (budget: within 5%).
func BenchmarkShardWriters(b *testing.B) {
	const writers = 8
	for _, withObs := range []bool{false, true} {
		name := "GROUPED/shards=%d"
		if withObs {
			name = "GROUPED-OBS/shards=%d"
		}
		for _, n := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf(name, n), func(b *testing.B) {
				p := workload.Params{Depth: 2, LeafTuples: 2048, Fanout: 64, NumTriggers: 64, NumSatisfied: 1}
				w, err := workload.BuildSharded(p, core.ModeGrouped, n, 1)
				if err != nil {
					b.Fatal(err)
				}
				if withObs {
					w.Engine.EnableObs(obs.New())
				}
				var payload atomic.Int64
				payload.Store(1 << 20)
				if err := w.UpdateLeafOn(0, float64(payload.Add(1))); err != nil { // warm-up
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for g := 0; g < writers; g++ {
						wg.Add(1)
						go func(g int) {
							defer wg.Done()
							leaf := int64(g*p.Fanout + i%p.Fanout)
							if err := w.UpdateLeafOn(leaf, float64(payload.Add(1))); err != nil {
								b.Error(err)
							}
						}(g)
					}
					wg.Wait()
				}
				b.StopTimer()
				if w.Notifications.Load() == 0 {
					b.Fatal("no notifications fired; benchmark is not exercising the sharded pipeline")
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*writers), "ns/update")
			})
		}
	}
}

// BenchmarkTriggerCompile measures XML-trigger compile time (paper §6:
// "fairly small (a hundred milliseconds, even for a complex view)").
func BenchmarkTriggerCompile(b *testing.B) {
	p := benchParams()
	p.NumTriggers = 1
	w, err := workload.Build(p, core.ModeGrouped, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("bench%d", i)
		src := fmt.Sprintf(`CREATE TRIGGER %s AFTER UPDATE ON view('doc')/e0 WHERE NEW_NODE/@name = 'x%d' DO notify(NEW_NODE)`, name, i)
		if err := w.Engine.CreateTrigger(src); err != nil {
			b.Fatal(err)
		}
		if err := w.Engine.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBOld isolates the Section 5.2 optimization: GROUPED
// (direct B_old aggregation) vs GROUPED-AGG (delta-derived old aggregates)
// at a fanout where aggregation cost matters.
func BenchmarkAblationBOld(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeGrouped, core.ModeGroupedAgg} {
		b.Run(mode.String(), func(b *testing.B) {
			p := benchParams()
			p.Fanout = 256
			w, err := workload.Build(p, mode, 1)
			if err != nil {
				b.Fatal(err)
			}
			runUpdates(b, w)
		})
	}
}

// BenchmarkAblationMaterialized compares the translated-trigger approach
// against the materialize-and-diff strawman (Section 1): the strawman's
// per-update cost grows with view size; GROUPED's does not. Kept at small
// scale — the strawman is quadratic in practice.
func BenchmarkAblationMaterialized(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeGrouped, core.ModeMaterialized} {
		for _, n := range []int{1024, 4096} {
			b.Run(fmt.Sprintf("%s/leaves=%d", mode, n), func(b *testing.B) {
				p := benchParams()
				p.LeafTuples = n
				p.NumTriggers = 10
				w, err := workload.Build(p, mode, 1)
				if err != nil {
					b.Fatal(err)
				}
				runUpdates(b, w)
			})
		}
	}
}

// TestTable2ParameterGrid smoke-tests every Table 2 parameter value at
// reduced scale (experiment E7 in DESIGN.md).
func TestTable2ParameterGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("grid smoke test skipped in -short mode")
	}
	base := workload.Params{Depth: 2, LeafTuples: 1024, Fanout: 16, NumTriggers: 50, NumSatisfied: 1}
	cases := []workload.Params{}
	for _, d := range []int{2, 3, 4, 5} {
		p := base
		p.Depth = d
		cases = append(cases, p)
	}
	for _, f := range []int{16, 32, 64} {
		p := base
		p.Fanout = f
		cases = append(cases, p)
	}
	for _, n := range []int{1, 10, 100} {
		p := base
		p.NumTriggers = n
		cases = append(cases, p)
	}
	for _, s := range []int{1, 20, 50} {
		p := base
		p.NumSatisfied = s
		cases = append(cases, p)
	}
	for _, p := range cases {
		w, err := workload.Build(p, core.ModeGroupedAgg, 1)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if err := w.UpdateOneLeaf(); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if w.Notifications != min(p.NumSatisfied, p.NumTriggers) {
			t.Errorf("%+v: notifications = %d", p, w.Notifications)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
