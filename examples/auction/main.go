// Auction: a deep-hierarchy scenario (the shape of the paper's Figure 18
// experiment): region -> category -> auction -> bid published as a single
// nested XML view, with triggers monitoring an intermediate level. Updates
// to leaf bids fire triggers three levels up.
package main

import (
	"fmt"
	"log"

	"quark/internal/core"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
)

func main() {
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name:       "region",
		Columns:    []schema.Column{{Name: "id", Type: schema.TInt}, {Name: "name", Type: schema.TString}},
		PrimaryKey: []string{"id"},
	})
	s.MustAddTable(&schema.Table{
		Name: "category",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt}, {Name: "parent", Type: schema.TInt}, {Name: "name", Type: schema.TString},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []schema.ForeignKey{{Columns: []string{"parent"}, RefTable: "region", RefColumns: []string{"id"}}},
	})
	s.MustAddTable(&schema.Table{
		Name: "auction",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt}, {Name: "parent", Type: schema.TInt}, {Name: "item", Type: schema.TString},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []schema.ForeignKey{{Columns: []string{"parent"}, RefTable: "category", RefColumns: []string{"id"}}},
	})
	s.MustAddTable(&schema.Table{
		Name: "bid",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TInt}, {Name: "parent", Type: schema.TInt}, {Name: "amount", Type: schema.TFloat},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []schema.ForeignKey{{Columns: []string{"parent"}, RefTable: "auction", RefColumns: []string{"id"}}},
	})
	db, err := reldb.Open(s)
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(db.Insert("region", reldb.Row{xdm.Int(1), xdm.Str("EU")}, reldb.Row{xdm.Int(2), xdm.Str("US")}))
	must(db.Insert("category",
		reldb.Row{xdm.Int(10), xdm.Int(1), xdm.Str("art")},
		reldb.Row{xdm.Int(11), xdm.Int(1), xdm.Str("books")},
		reldb.Row{xdm.Int(20), xdm.Int(2), xdm.Str("art")},
	))
	must(db.Insert("auction",
		reldb.Row{xdm.Int(100), xdm.Int(10), xdm.Str("Vermeer print")},
		reldb.Row{xdm.Int(101), xdm.Int(10), xdm.Str("Dürer etching")},
		reldb.Row{xdm.Int(102), xdm.Int(11), xdm.Str("First edition")},
		reldb.Row{xdm.Int(200), xdm.Int(20), xdm.Str("Warhol litho")},
	))
	must(db.Insert("bid",
		reldb.Row{xdm.Int(1000), xdm.Int(100), xdm.Float(250)},
		reldb.Row{xdm.Int(1001), xdm.Int(100), xdm.Float(300)},
		reldb.Row{xdm.Int(1002), xdm.Int(101), xdm.Float(800)},
		reldb.Row{xdm.Int(1003), xdm.Int(102), xdm.Float(120)},
		reldb.Row{xdm.Int(1004), xdm.Int(200), xdm.Float(4000)},
		reldb.Row{xdm.Int(1005), xdm.Int(200), xdm.Float(4500)},
	))

	engine := core.NewEngine(db, core.ModeGroupedAgg)
	engine.RegisterAction("watch", func(inv core.Invocation) error {
		item, _ := inv.New.Attribute("item")
		fmt.Printf("  -> auction %q now has %d bid(s)\n", item, len(inv.New.ChildElements("bid")))
		return nil
	})

	// Depth-4 view: regions/categories/auctions/bids.
	_, err = engine.CreateView("auctions", `
<auctions>
{for $r in view('default')/region/row
 let $cats := view('default')/category/row[./parent = $r/id]
 return <region name={$r/name}>
   {for $c in $cats
    let $aucs := view('default')/auction/row[./parent = $c/id]
    return <category name={$c/name}>
      {for $a in $aucs
       let $bids := view('default')/bid/row[./parent = $a/id]
       where count($bids) >= 1
       return <auction item={$a/item}>
         {for $b in $bids return <bid amount={$b/amount}></bid>}
       </auction>}
    </category>}
 </region>}
</auctions>`)
	must(err)

	// Monitor the auction level (two levels below the root, one above the
	// leaves) via the descendant axis.
	must(engine.CreateTrigger(
		`CREATE TRIGGER BidWatch AFTER UPDATE ON view('auctions')//auction DO watch(NEW_NODE)`))

	fmt.Println("A new bid lands on the Vermeer print:")
	must(engine.Insert("bid", reldb.Row{xdm.Int(1006), xdm.Int(100), xdm.Float(350)}))

	fmt.Println("\nA bid is retracted from the Warhol litho:")
	if _, err := engine.DeleteByPK("bid", xdm.Int(1004)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nFull view afterwards:")
	doc, err := engine.EvalView("auctions")
	must(err)
	fmt.Print(doc.Serialize(true))

	st := engine.Stats()
	fmt.Printf("\nstats: %d SQL triggers, %d firings, %d notifications\n",
		st.SQLTriggers, st.Fires, st.Actions)
}
