// Stockwatch: the paper's introduction motivates active views with web
// services where buyers subscribe to interesting events instead of polling.
// Here a brokerage publishes sector -> stock quotes as an XML view; many
// clients register structurally similar watch triggers differing only in
// their constants — exactly the Section 5.1 grouping scenario. All the
// watches share a single SQL trigger per (table, event).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"quark/internal/core"
	"quark/internal/dispatch"
	"quark/internal/outbox"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/wire"
	"quark/internal/xdm"
)

func main() {
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "sector",
		Columns: []schema.Column{
			{Name: "sid", Type: schema.TInt},
			{Name: "name", Type: schema.TString},
		},
		PrimaryKey: []string{"sid"},
	})
	s.MustAddTable(&schema.Table{
		Name: "quote",
		Columns: []schema.Column{
			{Name: "symbol", Type: schema.TString},
			{Name: "sid", Type: schema.TInt},
			{Name: "price", Type: schema.TFloat},
		},
		PrimaryKey:  []string{"symbol"},
		ForeignKeys: []schema.ForeignKey{{Columns: []string{"sid"}, RefTable: "sector", RefColumns: []string{"sid"}}},
	})
	db, err := reldb.Open(s)
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(db.Insert("sector",
		reldb.Row{xdm.Int(1), xdm.Str("tech")},
		reldb.Row{xdm.Int(2), xdm.Str("energy")},
	))
	must(db.Insert("quote",
		reldb.Row{xdm.Str("QRK"), xdm.Int(1), xdm.Float(31.40)},
		reldb.Row{xdm.Str("XML"), xdm.Int(1), xdm.Float(12.25)},
		reldb.Row{xdm.Str("DB2"), xdm.Int(1), xdm.Float(88.00)},
		reldb.Row{xdm.Str("OIL"), xdm.Int(2), xdm.Float(55.10)},
		reldb.Row{xdm.Str("GAS"), xdm.Int(2), xdm.Float(23.75)},
	))

	engine := core.NewEngine(db, core.ModeGrouped)
	engine.RegisterAction("notifyClient", func(inv core.Invocation) error {
		sec, _ := inv.New.Attribute("name")
		fmt.Printf("  -> %s: sector %q moved; cheapest entry now %s\n",
			inv.Trigger, sec, cheapest(inv))
		return nil
	})

	_, err = engine.CreateView("market", `
<market>
{for $s in view('default')/sector/row
 let $quotes := view('default')/quote/row[./sid = $s/sid]
 where count($quotes) >= 1
 return <sector name={$s/name}>
   {for $q in $quotes return <stock symbol={$q/symbol} price={$q/price}></stock>}
 </sector>}
</market>`)
	must(err)

	// 200 clients watch sectors with per-client thresholds: structurally
	// identical conditions, different constants -> one trigger group.
	for i := 0; i < 200; i++ {
		sector := "tech"
		if i%2 == 1 {
			sector = "energy"
		}
		threshold := 10 + i%40
		must(engine.CreateTrigger(fmt.Sprintf(`
			CREATE TRIGGER client%03d AFTER UPDATE ON view('market')/sector
			WHERE NEW_NODE/@name = '%s'
			  and count(NEW_NODE/stock[./@price < %d]) >= 1
			DO notifyClient(NEW_NODE)`, i, sector, threshold)))
	}
	must(engine.Flush())
	st := engine.Stats()
	fmt.Printf("%d watch triggers translated into %d SQL trigger(s) in %d group(s)\n\n",
		st.XMLTriggers, st.SQLTriggers, st.Groups)

	fmt.Println("XML (tech) dips to 9.80:")
	_, err = engine.UpdateByPK("quote", []xdm.Value{xdm.Str("XML")}, func(r reldb.Row) reldb.Row {
		r[2] = xdm.Float(9.80)
		return r
	})
	must(err)
	after := engine.Stats()
	fmt.Printf("\nactivated %d of %d watches with a single SQL trigger firing\n",
		after.Actions, st.XMLTriggers)

	// A market tick re-prices every symbol at once. With the batch API the
	// whole transaction fires each SQL trigger once at commit with the
	// merged transition tables, and clients see one coalesced notification
	// per moved sector instead of one per repriced stock.
	fmt.Println("\nmarket tick: repricing all five symbols in one transaction:")
	setPrice := func(p float64) func(reldb.Row) reldb.Row {
		return func(r reldb.Row) reldb.Row {
			r[2] = xdm.Float(p)
			return r
		}
	}
	must(engine.Batch(func(tx *reldb.Tx) error {
		for sym, price := range map[string]float64{
			"QRK": 29.10, "XML": 9.95, "DB2": 86.40, "OIL": 8.20, "GAS": 24.10,
		} {
			if _, err := tx.UpdateByPK("quote", []xdm.Value{xdm.Str(sym)}, setPrice(price)); err != nil {
				return err
			}
		}
		return nil
	}))
	final := engine.Stats()
	fmt.Printf("\n5 quote updates -> %d trigger firing(s), %d client notification(s)\n",
		final.Fires-after.Fires, final.Actions-after.Actions)

	// Slow sinks: real XML-trigger consumers push notifications over
	// messaging or HTTP, so give every client a 2ms-per-notification sink.
	// Delivered inline, a market tick blocks its writer for the sum of all
	// sink calls; with async dispatch the tick returns as soon as the
	// deliveries are enqueued, and the worker pool drains them behind it
	// (per-client FIFO order preserved).
	const sinkDelay = 2 * time.Millisecond
	engine.RegisterAction("notifyClient", func(inv core.Invocation) error {
		time.Sleep(sinkDelay)
		return nil
	})
	tick := func(base float64) time.Duration {
		start := time.Now()
		must(engine.Batch(func(tx *reldb.Tx) error {
			for i, sym := range []string{"QRK", "XML", "DB2", "OIL", "GAS"} {
				if _, err := tx.UpdateByPK("quote", []xdm.Value{xdm.Str(sym)}, setPrice(base+float64(i)/10)); err != nil {
					return err
				}
			}
			return nil
		}))
		return time.Since(start)
	}
	fmt.Printf("\nslow sinks (%v per notification):\n", sinkDelay)
	syncTick := tick(9.0) // every price under every threshold: all 200 watches fire
	fmt.Printf("  inline delivery:  market tick blocked its writer for %v\n", syncTick.Round(time.Millisecond))
	must(engine.EnableAsyncDispatch(dispatch.Config{Workers: 8, QueueCap: 1024, Policy: dispatch.Block}))
	asyncTick := tick(8.5)
	engine.Drain()
	dstats := engine.Stats().Dispatch
	fmt.Printf("  async dispatch:   tick returned in %v (%.0fx faster); %d queued notifications drained by %d workers (peak queue depth %d)\n",
		asyncTick.Round(time.Millisecond), float64(syncTick)/float64(asyncTick),
		dstats.Completed, 8, dstats.MaxDepth)
	must(engine.Close())

	// Durable delivery: notifications that must survive a crash go through
	// the outbox — every activation is appended to a segment log before it
	// is handed to the worker pool, and acknowledged only once the sink
	// (here a Kafka-shaped partitioned mock, partition key = trigger name)
	// accepted it. We simulate the consumer dying mid-tick, kill the
	// process state, and replay the survivors from disk.
	fmt.Println("\ncrash and replay: durable delivery through the outbox")
	outDir, err := os.MkdirTemp("", "stockwatch-outbox-")
	must(err)
	defer os.RemoveAll(outDir)
	lg, err := outbox.Open(outDir, outbox.Options{})
	must(err)
	broker := outbox.NewPartitionedSink(4)
	// The broker connection drops after record 120, mid-tick. Keying the
	// failure on the record's log sequence (assigned in append order)
	// keeps the demo deterministic however the workers schedule.
	flaky := outbox.SinkFunc(func(rec *wire.Record) error {
		if rec.Seq > 120 {
			return fmt.Errorf("broker connection lost")
		}
		return broker.Deliver(rec)
	})
	must(engine.EnableAsyncDispatch(dispatch.Config{Workers: 8, QueueCap: 1024, Policy: dispatch.Block}))
	must(engine.EnableOutbox(lg, flaky))
	tick(7.5) // all 200 watches fire again
	engine.Drain()
	obst := engine.Stats().OutboxLog
	fmt.Printf("  before the crash: %d notifications appended to the log, %d delivered, %d still due\n",
		obst.Appended, broker.Total(), obst.Appended-int64(obst.Acked))
	must(engine.Close())
	must(lg.Close()) // process dies here; the segment log is what survives

	// Restart: a fresh process opens the same directory and replays the
	// unacknowledged suffix into a recovered broker — at-least-once, in
	// log order, per-trigger FIFO preserved by the partition key.
	lg2, err := outbox.Open(outDir, outbox.Options{})
	must(err)
	defer lg2.Close()
	recovered := outbox.NewPartitionedSink(4)
	replayed, err := lg2.Replay(recovered)
	must(err)
	fmt.Printf("  after restart:    replayed %d notifications from %s (log watermark %d/%d, nothing lost)\n",
		replayed, outDir, lg2.Acked(), lg2.NextSeq()-1)
	for p := 0; p < recovered.Partitions(); p++ {
		if recs := recovered.Partition(p); len(recs) > 0 {
			line, err := recs[0].MarshalJSON()
			must(err)
			fmt.Printf("  sample replayed record (self-describing JSON):\n    %.120s...\n", line)
			break
		}
	}
}

func cheapest(inv core.Invocation) string {
	best := ""
	bestP := 1e18
	for _, st := range inv.New.ChildElements("stock") {
		p, _ := st.Attribute("price")
		v := xdm.ParseTyped(p)
		if v.AsFloat() < bestP {
			bestP = v.AsFloat()
			sym, _ := st.Attribute("symbol")
			best = fmt.Sprintf("%s @ %s", sym, p)
		}
	}
	return best
}
