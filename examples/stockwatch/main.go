// Stockwatch: the paper's introduction motivates active views with web
// services where buyers subscribe to interesting events instead of polling.
// Here a brokerage publishes sector -> stock quotes as an XML view; many
// clients register structurally similar watch triggers differing only in
// their constants — exactly the Section 5.1 grouping scenario. All the
// watches share a single SQL trigger per (table, event).
package main

import (
	"fmt"
	"log"
	"time"

	"quark/internal/core"
	"quark/internal/dispatch"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
)

func main() {
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "sector",
		Columns: []schema.Column{
			{Name: "sid", Type: schema.TInt},
			{Name: "name", Type: schema.TString},
		},
		PrimaryKey: []string{"sid"},
	})
	s.MustAddTable(&schema.Table{
		Name: "quote",
		Columns: []schema.Column{
			{Name: "symbol", Type: schema.TString},
			{Name: "sid", Type: schema.TInt},
			{Name: "price", Type: schema.TFloat},
		},
		PrimaryKey:  []string{"symbol"},
		ForeignKeys: []schema.ForeignKey{{Columns: []string{"sid"}, RefTable: "sector", RefColumns: []string{"sid"}}},
	})
	db, err := reldb.Open(s)
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(db.Insert("sector",
		reldb.Row{xdm.Int(1), xdm.Str("tech")},
		reldb.Row{xdm.Int(2), xdm.Str("energy")},
	))
	must(db.Insert("quote",
		reldb.Row{xdm.Str("QRK"), xdm.Int(1), xdm.Float(31.40)},
		reldb.Row{xdm.Str("XML"), xdm.Int(1), xdm.Float(12.25)},
		reldb.Row{xdm.Str("DB2"), xdm.Int(1), xdm.Float(88.00)},
		reldb.Row{xdm.Str("OIL"), xdm.Int(2), xdm.Float(55.10)},
		reldb.Row{xdm.Str("GAS"), xdm.Int(2), xdm.Float(23.75)},
	))

	engine := core.NewEngine(db, core.ModeGrouped)
	engine.RegisterAction("notifyClient", func(inv core.Invocation) error {
		sec, _ := inv.New.Attribute("name")
		fmt.Printf("  -> %s: sector %q moved; cheapest entry now %s\n",
			inv.Trigger, sec, cheapest(inv))
		return nil
	})

	_, err = engine.CreateView("market", `
<market>
{for $s in view('default')/sector/row
 let $quotes := view('default')/quote/row[./sid = $s/sid]
 where count($quotes) >= 1
 return <sector name={$s/name}>
   {for $q in $quotes return <stock symbol={$q/symbol} price={$q/price}></stock>}
 </sector>}
</market>`)
	must(err)

	// 200 clients watch sectors with per-client thresholds: structurally
	// identical conditions, different constants -> one trigger group.
	for i := 0; i < 200; i++ {
		sector := "tech"
		if i%2 == 1 {
			sector = "energy"
		}
		threshold := 10 + i%40
		must(engine.CreateTrigger(fmt.Sprintf(`
			CREATE TRIGGER client%03d AFTER UPDATE ON view('market')/sector
			WHERE NEW_NODE/@name = '%s'
			  and count(NEW_NODE/stock[./@price < %d]) >= 1
			DO notifyClient(NEW_NODE)`, i, sector, threshold)))
	}
	must(engine.Flush())
	st := engine.Stats()
	fmt.Printf("%d watch triggers translated into %d SQL trigger(s) in %d group(s)\n\n",
		st.XMLTriggers, st.SQLTriggers, st.Groups)

	fmt.Println("XML (tech) dips to 9.80:")
	_, err = engine.UpdateByPK("quote", []xdm.Value{xdm.Str("XML")}, func(r reldb.Row) reldb.Row {
		r[2] = xdm.Float(9.80)
		return r
	})
	must(err)
	after := engine.Stats()
	fmt.Printf("\nactivated %d of %d watches with a single SQL trigger firing\n",
		after.Actions, st.XMLTriggers)

	// A market tick re-prices every symbol at once. With the batch API the
	// whole transaction fires each SQL trigger once at commit with the
	// merged transition tables, and clients see one coalesced notification
	// per moved sector instead of one per repriced stock.
	fmt.Println("\nmarket tick: repricing all five symbols in one transaction:")
	setPrice := func(p float64) func(reldb.Row) reldb.Row {
		return func(r reldb.Row) reldb.Row {
			r[2] = xdm.Float(p)
			return r
		}
	}
	must(engine.Batch(func(tx *reldb.Tx) error {
		for sym, price := range map[string]float64{
			"QRK": 29.10, "XML": 9.95, "DB2": 86.40, "OIL": 8.20, "GAS": 24.10,
		} {
			if _, err := tx.UpdateByPK("quote", []xdm.Value{xdm.Str(sym)}, setPrice(price)); err != nil {
				return err
			}
		}
		return nil
	}))
	final := engine.Stats()
	fmt.Printf("\n5 quote updates -> %d trigger firing(s), %d client notification(s)\n",
		final.Fires-after.Fires, final.Actions-after.Actions)

	// Slow sinks: real XML-trigger consumers push notifications over
	// messaging or HTTP, so give every client a 2ms-per-notification sink.
	// Delivered inline, a market tick blocks its writer for the sum of all
	// sink calls; with async dispatch the tick returns as soon as the
	// deliveries are enqueued, and the worker pool drains them behind it
	// (per-client FIFO order preserved).
	const sinkDelay = 2 * time.Millisecond
	engine.RegisterAction("notifyClient", func(inv core.Invocation) error {
		time.Sleep(sinkDelay)
		return nil
	})
	tick := func(base float64) time.Duration {
		start := time.Now()
		must(engine.Batch(func(tx *reldb.Tx) error {
			for i, sym := range []string{"QRK", "XML", "DB2", "OIL", "GAS"} {
				if _, err := tx.UpdateByPK("quote", []xdm.Value{xdm.Str(sym)}, setPrice(base+float64(i)/10)); err != nil {
					return err
				}
			}
			return nil
		}))
		return time.Since(start)
	}
	fmt.Printf("\nslow sinks (%v per notification):\n", sinkDelay)
	syncTick := tick(9.0) // every price under every threshold: all 200 watches fire
	fmt.Printf("  inline delivery:  market tick blocked its writer for %v\n", syncTick.Round(time.Millisecond))
	must(engine.EnableAsyncDispatch(dispatch.Config{Workers: 8, QueueCap: 1024, Policy: dispatch.Block}))
	asyncTick := tick(8.5)
	engine.Drain()
	dstats := engine.Stats().Dispatch
	fmt.Printf("  async dispatch:   tick returned in %v (%.0fx faster); %d queued notifications drained by %d workers (peak queue depth %d)\n",
		asyncTick.Round(time.Millisecond), float64(syncTick)/float64(asyncTick),
		dstats.Completed, 8, dstats.MaxDepth)
	must(engine.Close())
}

func cheapest(inv core.Invocation) string {
	best := ""
	bestP := 1e18
	for _, st := range inv.New.ChildElements("stock") {
		p, _ := st.Attribute("price")
		v := xdm.ParseTyped(p)
		if v.AsFloat() < bestP {
			bestP = v.AsFloat()
			sym, _ := st.Attribute("symbol")
			best = fmt.Sprintf("%s @ %s", sym, p)
		}
	}
	return best
}
