// Catalog: the paper's full running example (Figures 2-5, Section 2.2) —
// a supplier exposes its product catalog as an XML web service and buyers
// subscribe to changes with XML triggers covering all three event kinds.
package main

import (
	"fmt"
	"log"

	"quark/internal/core"
	"quark/internal/fixtures"
	"quark/internal/reldb"
	"quark/internal/xdm"
)

const catalogView = `
<catalog>
{for $prodname in distinct(view('default')/product/row/pname)
 let $products := view('default')/product/row[./pname = $prodname]
 let $vendors := view('default')/vendor/row[./pid = $products/pid]
 where count($vendors) >= 2
 return <product name={$prodname}>
   { for $vendor in $vendors
     return <vendor>
       {$vendor/*}
     </vendor>}
 </product>}
</catalog>`

func main() {
	db, err := fixtures.OpenPaperDB()
	if err != nil {
		log.Fatal(err)
	}
	engine := core.NewEngine(db, core.ModeGrouped)

	engine.RegisterAction("buyerAlert", func(inv core.Invocation) error {
		switch inv.Event {
		case reldb.EvUpdate:
			name, _ := inv.New.Attribute("name")
			fmt.Printf("  [alert] product %q changed; now %d vendor(s)\n",
				name, len(inv.New.ChildElements("vendor")))
		case reldb.EvInsert:
			name, _ := inv.New.Attribute("name")
			fmt.Printf("  [alert] product %q is now available from 2+ vendors\n", name)
		case reldb.EvDelete:
			name, _ := inv.Old.Attribute("name")
			fmt.Printf("  [alert] product %q dropped below 2 vendors\n", name)
		}
		return nil
	})

	if _, err := engine.CreateView("catalog", catalogView); err != nil {
		log.Fatal(err)
	}
	triggers := []string{
		// The paper's trigger, generalized to any product.
		`CREATE TRIGGER PriceWatch AFTER UPDATE ON view('catalog')/product DO buyerAlert(NEW_NODE)`,
		`CREATE TRIGGER Arrivals  AFTER INSERT ON view('catalog')/product DO buyerAlert(NEW_NODE)`,
		`CREATE TRIGGER Departures AFTER DELETE ON view('catalog')/product DO buyerAlert(OLD_NODE)`,
	}
	for _, src := range triggers {
		if err := engine.CreateTrigger(src); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("1. Amazon discounts P1 (CRT 15 changes):")
	if _, err := engine.UpdateByPK("vendor", []xdm.Value{xdm.Str("Amazon"), xdm.Str("P1")}, func(r reldb.Row) reldb.Row {
		r[2] = xdm.Float(75)
		return r
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("2. A new vendor picks up P2 (LCD 19 changes):")
	if err := engine.Insert("vendor", reldb.Row{xdm.Str("Newegg"), xdm.Str("P2"), xdm.Float(170)}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("3. A brand-new product gains its second vendor (enters the catalog):")
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(engine.Insert("product", reldb.Row{xdm.Str("P4"), xdm.Str("OLED 27"), xdm.Str("LG")}))
	must(engine.Insert("vendor", reldb.Row{xdm.Str("Amazon"), xdm.Str("P4"), xdm.Float(900)}))
	must(engine.Insert("vendor", reldb.Row{xdm.Str("Bestbuy"), xdm.Str("P4"), xdm.Float(950)}))

	fmt.Println("4. Vendors abandon LCD 19 until it leaves the catalog:")
	if _, err := engine.Delete("vendor", func(r reldb.Row) bool {
		return r[1].AsString() == "P2" && r[0].AsString() != "Bestbuy"
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nFinal catalog:")
	doc, err := engine.EvalView("catalog")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(doc.Serialize(true))

	st := engine.Stats()
	fmt.Printf("\n3 XML triggers -> %d SQL triggers (grouped); %d firings, %d alerts\n",
		st.SQLTriggers, st.Fires, st.Actions)
}
