// Command shardfleet demonstrates the sharded trigger engine: the
// paper's catalog (products grouped by name, vendors nested inside)
// partitioned across four embedded engines by product NAME, with one
// trigger population installed fleet-wide. It walks through routed
// single-row updates, a cross-shard batch, and a product rename whose
// routing key changes — a live subtree migration between shards — and
// prints the per-shard breakdown at each step.
package main

import (
	"fmt"
	"log"

	"quark/internal/core"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/shard"
	"quark/internal/xdm"
)

func main() {
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "product",
		Columns: []schema.Column{
			{Name: "pid", Type: schema.TString},
			{Name: "pname", Type: schema.TString},
			{Name: "mfr", Type: schema.TString},
		},
		PrimaryKey: []string{"pid"},
	})
	s.MustAddTable(&schema.Table{
		Name: "vendor",
		Columns: []schema.Column{
			{Name: "vname", Type: schema.TString},
			{Name: "pid", Type: schema.TString},
			{Name: "price", Type: schema.TFloat},
		},
		PrimaryKey: []string{"vname", "pid"},
		ForeignKeys: []schema.ForeignKey{
			{Columns: []string{"pid"}, RefTable: "product", RefColumns: []string{"pid"}},
		},
	})

	e, err := shard.New(s, shard.Config{
		Shards: 4,
		Mode:   core.ModeGrouped,
		Routing: []shard.TableRouting{
			{Table: "product", ByColumns: []string{"pname"}}, // the view's grouping key
			{Table: "vendor", ViaParent: "product"},          // co-locate with the product
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	e.RegisterAction("notify", func(inv core.Invocation) error {
		fmt.Printf("  -> %s %s: %s\n", inv.Trigger, inv.Event, inv.New.Serialize(false))
		return nil
	})
	if err := e.CreateView("catalog", `<catalog>
{for $pname in distinct(view('default')/product/row/pname)
 let $products := view('default')/product/row[./pname = $pname]
 let $vendors := view('default')/vendor/row[./pid = $products/pid]
 return <product name={$pname}>
   {for $v in $vendors return <vendor>{$v/*}</vendor>}
 </product>}
</catalog>`); err != nil {
		log.Fatal(err)
	}
	if err := e.CreateTrigger(`CREATE TRIGGER WatchCatalog AFTER UPDATE ON view('catalog')/product DO notify(NEW_NODE)`); err != nil {
		log.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		log.Fatal(err)
	}

	str := xdm.Str
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(e.Insert("product",
		reldb.Row{str("P1"), str("CRT 15"), str("Samsung")},
		reldb.Row{str("P2"), str("LCD 19"), str("Samsung")},
		reldb.Row{str("P3"), str("OLED 27"), str("LG")},
	))
	must(e.Insert("vendor",
		reldb.Row{str("Amazon"), str("P1"), xdm.Float(100)},
		reldb.Row{str("Bestbuy"), str("P2"), xdm.Float(180)},
		reldb.Row{str("Newegg"), str("P3"), xdm.Float(500)},
	))
	perShard := func() {
		st := e.Stats()
		fmt.Printf("  fleet: %d shard(s), %d directory entries; per-shard products: ", st.Shards, st.DirEntries)
		for i := 0; i < e.NumShards(); i++ {
			fmt.Printf("[%d]=%d ", i, e.Shard(i).DB().RowCount("product"))
		}
		fmt.Println()
	}
	fmt.Println("Loaded 3 products + 3 vendors, routed by product name:")
	perShard()

	fmt.Println("\nRouted single-row update (fires on the owning shard only):")
	if _, err := e.UpdateByPK("vendor", []xdm.Value{str("Amazon"), str("P1")}, func(r reldb.Row) reldb.Row {
		r[2] = xdm.Float(90)
		return r
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nCross-shard batch (one transaction, per-shard commits in shard order):")
	must(e.Batch(func(tx *shard.Tx) error {
		for _, up := range []struct {
			vname, pid string
			price      float64
		}{{"Amazon", "P1", 85}, {"Bestbuy", "P2", 170}, {"Newegg", "P3", 450}} {
			if _, err := tx.UpdateByPK("vendor", []xdm.Value{str(up.vname), str(up.pid)}, func(r reldb.Row) reldb.Row {
				r[2] = xdm.Float(up.price)
				return r
			}); err != nil {
				return err
			}
		}
		return nil
	}))

	fmt.Println("\nRename P1 (routing key changes -> subtree migrates shards):")
	before, _ := e.OwnerOf("product", str("P1"))
	if _, err := e.UpdateByPK("product", []xdm.Value{str("P1")}, func(r reldb.Row) reldb.Row {
		r[1] = str("CRT 15 flat")
		return r
	}); err != nil {
		log.Fatal(err)
	}
	after, _ := e.OwnerOf("product", str("P1"))
	fmt.Printf("  P1 moved shard %d -> %d (vendor followed: ", before, after)
	vOwner, _ := e.OwnerOf("vendor", str("Amazon"), str("P1"))
	fmt.Printf("%v)\n", vOwner == after)
	perShard()

	st := e.Stats()
	fmt.Printf("\nTotals: %d fire(s), %d action(s) across %d shard(s)\n", st.Fires, st.Actions, st.Shards)
}
