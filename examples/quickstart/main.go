// Quickstart: a five-minute tour of the public API — define a relational
// schema, publish it as an XML view, place an XML trigger on the view, and
// watch it fire when base-table updates affect the monitored nodes.
package main

import (
	"fmt"
	"log"

	"quark/internal/core"
	"quark/internal/reldb"
	"quark/internal/schema"
	"quark/internal/xdm"
)

func main() {
	// 1. Relational schema: authors and their books.
	s := schema.New()
	s.MustAddTable(&schema.Table{
		Name: "author",
		Columns: []schema.Column{
			{Name: "aid", Type: schema.TInt},
			{Name: "name", Type: schema.TString},
		},
		PrimaryKey: []string{"aid"},
	})
	s.MustAddTable(&schema.Table{
		Name: "book",
		Columns: []schema.Column{
			{Name: "bid", Type: schema.TInt},
			{Name: "aid", Type: schema.TInt},
			{Name: "title", Type: schema.TString},
			{Name: "price", Type: schema.TFloat},
		},
		PrimaryKey:  []string{"bid"},
		ForeignKeys: []schema.ForeignKey{{Columns: []string{"aid"}, RefTable: "author", RefColumns: []string{"aid"}}},
	})

	db, err := reldb.Open(s)
	if err != nil {
		log.Fatal(err)
	}
	must(db.Insert("author",
		reldb.Row{xdm.Int(1), xdm.Str("Knuth")},
		reldb.Row{xdm.Int(2), xdm.Str("Date")},
	))
	must(db.Insert("book",
		reldb.Row{xdm.Int(10), xdm.Int(1), xdm.Str("TAOCP Vol 1"), xdm.Float(90)},
		reldb.Row{xdm.Int(11), xdm.Int(1), xdm.Str("TAOCP Vol 2"), xdm.Float(95)},
		reldb.Row{xdm.Int(12), xdm.Int(2), xdm.Str("Intro to DB Systems"), xdm.Float(120)},
	))

	// 2. The active XML engine: GROUPED-AGG is the paper's best-performing
	// translation mode.
	engine := core.NewEngine(db, core.ModeGroupedAgg)

	// 3. An XML view (XQuery over the automatic default view): authors
	// with at least 2 books, each listing its books.
	_, err = engine.CreateView("library", `
<library>
{for $a in view('default')/author/row
 let $books := view('default')/book/row[./aid = $a/aid]
 where count($books) >= 2
 return <author name={$a/name}>
   {for $b in $books return <book title={$b/title}>{$b/price}</book>}
 </author>}
</library>`)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := engine.EvalView("library")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("The view today:")
	fmt.Print(doc.Serialize(true))

	// 4. An action and an XML trigger on the (unmaterialized!) view.
	engine.RegisterAction("ping", func(inv core.Invocation) error {
		name := ""
		if inv.New != nil {
			name, _ = inv.New.Attribute("name")
		} else if inv.Old != nil {
			name, _ = inv.Old.Attribute("name")
		}
		fmt.Printf(">> %s event on author %q (trigger %s)\n", inv.Event, name, inv.Trigger)
		return nil
	})
	must(engine.CreateTrigger(
		`CREATE TRIGGER KnuthWatch AFTER UPDATE ON view('library')/author
		 WHERE NEW_NODE/@name = 'Knuth' DO ping(NEW_NODE)`))
	must(engine.CreateTrigger(
		`CREATE TRIGGER NewAuthors AFTER INSERT ON view('library')/author DO ping(NEW_NODE)`))

	// 5. Base-table updates fire the triggers automatically.
	fmt.Println("\nUpdating a Knuth book price...")
	_, err = engine.UpdateByPK("book", []xdm.Value{xdm.Int(10)}, func(r reldb.Row) reldb.Row {
		r[3] = xdm.Float(99)
		return r
	})
	must(err)

	fmt.Println("\nGiving Date a second book (author enters the view)...")
	must(engine.Insert("book", reldb.Row{xdm.Int(13), xdm.Int(2), xdm.Str("SQL and Relational Theory"), xdm.Float(60)}))

	st := engine.Stats()
	fmt.Printf("\n%d XML trigger(s) translated into %d SQL trigger(s); %d action(s) ran\n",
		st.XMLTriggers, st.SQLTriggers, st.Actions)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
