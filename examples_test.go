package quark

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesSmoke builds and runs every examples/ program end to end and
// checks for the line proving its trigger pipeline actually fired. The
// examples double as integration tests of the public engine surface
// (views, triggers, grouping, the batch API).
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke tests spawn `go run`; skipped in -short mode")
	}
	cases := map[string]string{
		"quickstart": "action(s) ran",
		"catalog":    "SQL triggers (grouped)",
		"auction":    "notifications",
		"stockwatch": "trigger firing(s)",
		"shardfleet": "vendor followed: true",
	}
	for name, want := range cases {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("output of %s lacks %q:\n%s", name, want, out)
			}
		})
	}
}
